//! Fleet-scale serving: N RecNMP nodes behind a front-end router.
//!
//! One RecNMP node saturates at the capacity of its channels; production
//! recommendation traffic is served by a *fleet* of such nodes behind a
//! router. This module scales the single-node serving model up one
//! level:
//!
//! * a [`Fleet`] owns N node backends (each a multi-channel cluster or a
//!   tiered DRAM+SSD system — anything implementing
//!   [`SlsBackend`](recnmp_backend::SlsBackend));
//! * a [`FleetPlacementPlan`] places tables twice — tables → nodes (with
//!   cross-node replication of the hottest tables), then tables →
//!   channels within each node;
//! * a [`RouterPolicy`] picks, per batch, which node replica serves it
//!   (stateless hash-affinity rotation, least-outstanding-lookups, or
//!   placement-aware scatter onto the node whose owning channels are
//!   least backlogged);
//! * a [`NetworkCost`] charges the inter-node hop: a query whose batches
//!   span nodes completes at its slowest node (each node pays the usual
//!   per-node [`GatherCost`]) plus a base-plus-per-byte network gather
//!   over the pooled result vectors shipped back to the router. A
//!   single-node fleet pays **no** network cost (the router is
//!   co-located), which makes a 1-node fleet numerically identical to
//!   the bare cluster under sharded serving — the invariant the
//!   `serve_sweep --fleet` smoke and `fleet_determinism` tests pin.
//!
//! Execution nests the two parallelism levels on the shared
//! deterministic worker pool: each query spawns one task per involved
//! node, and each node task fans its per-channel shards out as nested
//! tasks ([`SlsBackend::try_run_shards`]); the pool's own-batch helping
//! keeps the thread budget fixed, and results merge in (node, channel)
//! order, so fleet runs are byte-identical at any worker count.
//!
//! # Examples
//!
//! ```no_run
//! use recnmp_sim::fleet::{serve_fleet, Fleet, FleetConfig, FleetDispatch};
//! use recnmp_sim::serving::{ArrivalProcess, QueryShape};
//!
//! let mut fleet = Fleet::reference(2);
//! let cfg = FleetConfig {
//!     process: ArrivalProcess::Poisson,
//!     qps: 50_000.0,
//!     queries: 64,
//!     shape: QueryShape::new(8, 2, 8).with_table_sampling(4),
//!     dispatch: FleetDispatch::replicated(2),
//!     seed: 7,
//! };
//! let report = serve_fleet(&mut fleet, &cfg).unwrap();
//! assert_eq!(report.latencies.len(), 64);
//! ```

use recnmp_backend::{
    FleetPlacementPlan, PlacementPolicy, RunReport, SlsBackend, SlsTrace, TableUsage,
};
use recnmp_types::units::{completions_to_qps, qps_to_interarrival_cycles};
use recnmp_types::{ByteSize, ConfigError, Cycle, SimError};
use serde::{Deserialize, Serialize};

use super::arrivals::{ArrivalProcess, QueryShape, QueryStream};
use super::faults::{
    FaultPlan, HealthTracker, HedgePolicy, NodeHealth, QueryOutcome, ResilienceConfig, RetryPolicy,
    SloPolicy,
};
use super::policy::GatherCost;
use super::sweep::{reference_cluster4, SweepPoint, SweepSpec};

/// A factory producing fresh (cold) fleets, so every sweep point starts
/// from identical hardware state.
pub type FleetFactory<'a> = dyn FnMut() -> Fleet + 'a;

/// N node backends behind one router: the serving fleet.
///
/// Every node must expose the same
/// [`server_count`](SlsBackend::server_count) — the fleet's placement
/// plan assumes a uniform channels-per-node geometry.
pub struct Fleet {
    name: String,
    channels_per_node: usize,
    nodes: Vec<Box<dyn SlsBackend>>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("name", &self.name)
            .field("channels_per_node", &self.channels_per_node)
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl Fleet {
    /// Builds a fleet from node backends.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `nodes` is empty or the nodes
    /// disagree on server count.
    pub fn new(nodes: Vec<Box<dyn SlsBackend>>) -> Result<Self, ConfigError> {
        let Some(first) = nodes.first() else {
            return Err(ConfigError::new("fleet", "need at least one node"));
        };
        let channels_per_node = first.server_count();
        if let Some(odd) = nodes.iter().find(|n| n.server_count() != channels_per_node) {
            return Err(ConfigError::new(
                "fleet",
                format!(
                    "nodes disagree on geometry: {} exposes {} server(s), {} exposes {}",
                    first.name(),
                    channels_per_node,
                    odd.name(),
                    odd.server_count()
                ),
            ));
        }
        let name = format!("fleet[{} x {}]", nodes.len(), first.name());
        Ok(Self {
            name,
            channels_per_node,
            nodes,
        })
    }

    /// The reference fleet: `nodes` copies of the 4-channel reference
    /// serving cluster
    /// ([`reference_cluster4`](super::sweep::reference_cluster4)).
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is zero.
    pub fn reference(nodes: usize) -> Self {
        Self::new((0..nodes).map(|_| reference_cluster4()).collect()).expect("reference fleet")
    }

    /// `"fleet[N x node-name]"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Channels (dispatchable servers) per node.
    pub fn channels_per_node(&self) -> usize {
        self.channels_per_node
    }
}

/// How the front-end router picks a node replica for each batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// Stateless: a batch of table `t` in query `i` goes to node replica
    /// `i mod replicas(t)` — replicated tables rotate through their node
    /// set, unreplicated tables always hit their single home.
    HashAffinity,
    /// Size-aware join-shortest-queue at node granularity: the replica
    /// with the fewest outstanding lookups at dispatch time (ties to the
    /// lowest node index).
    LeastOutstanding,
    /// Placement-aware scatter: the replica whose *owning channels* for
    /// this table free earliest — the router peeks one level deeper than
    /// [`LeastOutstanding`](Self::LeastOutstanding) and targets channel
    /// backlog rather than node backlog.
    PlacementScatter,
}

impl RouterPolicy {
    /// Every policy, in comparison order.
    pub const ALL: [RouterPolicy; 3] = [
        RouterPolicy::HashAffinity,
        RouterPolicy::LeastOutstanding,
        RouterPolicy::PlacementScatter,
    ];

    /// A short stable label.
    pub fn name(self) -> &'static str {
        match self {
            RouterPolicy::HashAffinity => "hash-affinity",
            RouterPolicy::LeastOutstanding => "least-outstanding",
            RouterPolicy::PlacementScatter => "placement-scatter",
        }
    }
}

/// The modeled cost of shipping pooled results from the nodes back to
/// the router: `base + per_byte * result_bytes` cycles per query, where
/// `result_bytes` sums the pooled output vectors
/// ([`SlsBatch::output_bytes`](recnmp_trace::SlsBatch::output_bytes)) of
/// every batch the query scattered off-router. Charged once per query —
/// node transfers overlap on independent links, so the gather is
/// dominated by the aggregate bytes plus one base latency.
///
/// A single-node fleet pays nothing: the router is co-located with its
/// only node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkCost {
    /// Fixed per-query network latency (one rack round trip).
    pub base: Cycle,
    /// Cycles per pooled result byte shipped node → router.
    pub per_byte: Cycle,
}

impl NetworkCost {
    /// Builds a cost model.
    pub fn new(base: Cycle, per_byte: Cycle) -> Self {
        Self { base, per_byte }
    }

    /// The default intra-rack model: a fixed round-trip plus a per-byte
    /// charge an order of magnitude above the on-host
    /// [`GatherCost`](super::policy::GatherCost) — crossing the network
    /// must cost visibly more than staying on the node, or the model
    /// would never penalize scattering a query fleet-wide.
    pub fn rack_default() -> Self {
        Self::new(1_200, 1)
    }

    /// Total network cycles for one query shipping `result_bytes` back.
    pub fn cost_of(self, result_bytes: u64) -> Cycle {
        self.base + self.per_byte * result_bytes
    }
}

/// How a fleet turns queries into node work: the router, the two
/// placement levels, and the gather costs at both levels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetDispatch {
    /// Node pick per batch.
    pub router: RouterPolicy,
    /// Level-1 placement: tables → nodes.
    pub node_policy: PlacementPolicy,
    /// Level-2 placement: tables → channels within each node.
    pub within_policy: PlacementPolicy,
    /// Per-node scatter/gather merge cost (same role as in sharded
    /// single-node serving).
    pub gather: GatherCost,
    /// Inter-node result gather cost.
    pub network: NetworkCost,
    /// Optional per-channel capacity bound both placement levels pack
    /// against.
    pub channel_capacity: Option<ByteSize>,
}

impl FleetDispatch {
    /// Pure sharding: every table lives on exactly one node
    /// (frequency-balanced, no replication) — the scaling baseline.
    pub fn sharded() -> Self {
        Self {
            router: RouterPolicy::HashAffinity,
            node_policy: PlacementPolicy::FrequencyBalanced { replicate: 0 },
            within_policy: PlacementPolicy::FrequencyBalanced { replicate: 0 },
            gather: GatherCost::host_default(),
            network: NetworkCost::rack_default(),
            channel_capacity: None,
        }
    }

    /// Hot-table replication: the `hot` hottest tables are replicated
    /// onto every node (level 1) so top-load traffic has more than one
    /// home. Router and within-node placement match
    /// [`sharded`](Self::sharded), so curves isolate the replication
    /// effect.
    pub fn replicated(hot: usize) -> Self {
        Self {
            node_policy: PlacementPolicy::FrequencyBalanced { replicate: hot },
            ..Self::sharded()
        }
    }

    /// A short stable label for the node-placement flavor
    /// (`"fleet-sharded"`, `"fleet-replicated(2)"`, ...).
    pub fn label(&self) -> String {
        match self.node_policy {
            PlacementPolicy::FrequencyBalanced { replicate: 0 } => "fleet-sharded".to_string(),
            PlacementPolicy::FrequencyBalanced { replicate } => {
                format!("fleet-replicated({replicate})")
            }
            PlacementPolicy::Hash => "fleet-hash".to_string(),
            PlacementPolicy::CapacityGreedy => "fleet-capacity".to_string(),
        }
    }
}

/// One fleet serving run: an offered load, a query shape, and a fleet
/// dispatch discipline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Arrival process of the open-loop generator.
    pub process: ArrivalProcess,
    /// Offered query rate (queries per second of simulated time).
    pub qps: f64,
    /// Queries to offer.
    pub queries: usize,
    /// SLS work per query.
    pub shape: QueryShape,
    /// Router, placement and gather model.
    pub dispatch: FleetDispatch,
    /// Seed for both the arrival schedule and the query index streams.
    pub seed: u64,
}

/// The outcome of one fleet serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Fleet label the run was served by.
    pub system: String,
    /// Router the run was dispatched under.
    pub router: RouterPolicy,
    /// Offered query rate.
    pub offered_qps: f64,
    /// Arrival cycle of each query, in arrival order.
    pub arrivals: Vec<Cycle>,
    /// Completion cycle of each query, in arrival order.
    pub completions: Vec<Cycle>,
    /// Enqueue→completion latency of each query, in arrival order.
    pub latencies: Vec<Cycle>,
    /// Queries that touched each node (a query spanning k nodes counts
    /// once on each).
    pub node_queries: Vec<u64>,
    /// Tables the node-level plan replicated across nodes.
    pub replicated_tables: usize,
    /// What became of each offered query, in arrival order. Plain
    /// (fault-free) serving completes everything; under
    /// [`serve_fleet_resilient`] queries may be rejected, shed or
    /// failed, and their `completions`/`latencies` entries are zeroed
    /// relative to arrival.
    pub outcomes: Vec<QueryOutcome>,
    /// The per-query failures behind every
    /// [`QueryOutcome::Failed`] entry, aggregated instead of aborting
    /// the run.
    pub failures: Vec<SimError>,
    /// Counters merged over every node shard, with `query_completions`
    /// carrying the per-query timestamps and `total_cycles` the
    /// makespan.
    pub report: RunReport,
}

impl FleetReport {
    /// Cycle at which the last query completed.
    pub fn makespan(&self) -> Cycle {
        self.completions.iter().copied().max().unwrap_or(0)
    }

    /// Queries served to completion.
    pub fn completed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|&&o| o == QueryOutcome::Completed)
            .count()
    }

    /// Fraction of offered queries served to completion (1.0 for an
    /// empty run).
    pub fn availability(&self) -> f64 {
        if self.outcomes.is_empty() {
            1.0
        } else {
            self.completed() as f64 / self.outcomes.len() as f64
        }
    }

    /// Latencies of the completed queries only — what the distribution
    /// summary and throughput window are computed over.
    pub fn completed_latencies(&self) -> Vec<Cycle> {
        self.latencies
            .iter()
            .zip(&self.outcomes)
            .filter(|(_, &o)| o == QueryOutcome::Completed)
            .map(|(&l, _)| l)
            .collect()
    }

    /// Completion throughput (queries per simulated second) over the
    /// completed queries, windowed over first→last completion exactly
    /// like
    /// [`ServingReport::achieved_qps`](super::scheduler::ServingReport::achieved_qps).
    pub fn achieved_qps(&self) -> f64 {
        let done: Vec<Cycle> = self
            .completions
            .iter()
            .zip(&self.outcomes)
            .filter(|(_, &o)| o == QueryOutcome::Completed)
            .map(|(&c, _)| c)
            .collect();
        let n = done.len() as u64;
        let first = done.iter().copied().min().unwrap_or(0);
        let last = done.iter().copied().max().unwrap_or(0);
        if n >= 2 && last > first {
            completions_to_qps(n - 1, last - first)
        } else {
            completions_to_qps(n, last)
        }
    }

    /// The latency distribution over completed queries.
    pub fn summary(&self) -> super::scheduler::LatencySummary {
        super::scheduler::LatencySummary::from_latencies(&self.completed_latencies())
    }

    /// Queries that completed within `deadline` cycles of their arrival
    /// — the goodput numerator under an SLO.
    pub fn goodput_count(&self, deadline: Cycle) -> u64 {
        self.latencies
            .iter()
            .zip(&self.outcomes)
            .filter(|(&l, &o)| o == QueryOutcome::Completed && l <= deadline)
            .count() as u64
    }

    /// `(good, offered)` over the queries arriving in `[from, until)`:
    /// how many met the SLO deadline vs how many were offered — the
    /// windowed goodput used to compare pre-fault and post-fault
    /// service.
    pub fn goodput_in_window(&self, deadline: Cycle, from: Cycle, until: Cycle) -> (u64, u64) {
        let mut good = 0;
        let mut offered = 0;
        for ((&arr, &lat), &out) in self
            .arrivals
            .iter()
            .zip(&self.latencies)
            .zip(&self.outcomes)
        {
            if arr < from || arr >= until {
                continue;
            }
            offered += 1;
            if out == QueryOutcome::Completed && lat <= deadline {
                good += 1;
            }
        }
        (good, offered)
    }
}

/// Serves `cfg.queries` open-loop queries on `fleet` and accounts
/// per-query latency in simulated time.
///
/// Arrival schedule and query streams derive from `cfg.seed` exactly as
/// in single-node [`serve`](super::scheduler::serve), so a 1-node fleet
/// replays the same workload as the bare cluster.
///
/// # Errors
///
/// Returns [`SimError::Stalled`] if any node's cycle-level run stalls,
/// or [`SimError::Config`] when placement cannot fit the workload's
/// tables at either level.
pub fn serve_fleet(fleet: &mut Fleet, cfg: &FleetConfig) -> Result<FleetReport, SimError> {
    let mut arrival_rng = recnmp_types::rng::DetRng::seed(cfg.seed ^ 0xa5a5_5a5a_0f0f_f0f0);
    let arrivals = cfg
        .process
        .arrival_times(cfg.qps, cfg.queries, &mut arrival_rng);
    let queries = QueryStream::new(cfg.shape, cfg.seed).take_queries(cfg.queries);
    serve_fleet_arrivals(fleet, cfg, &arrivals, &queries)
}

/// One node's scattered work: per-channel shards sorted by channel.
type Shards = Vec<(usize, SlsTrace)>;

/// The fleet scheduler core, shared by [`serve_fleet`] and the
/// saturation probe: routes each query's batches to nodes, scatters
/// within each node, simulates the touched nodes in parallel, and
/// accounts completion times.
pub(super) fn serve_fleet_arrivals(
    fleet: &mut Fleet,
    cfg: &FleetConfig,
    arrivals: &[Cycle],
    queries: &[SlsTrace],
) -> Result<FleetReport, SimError> {
    assert_eq!(arrivals.len(), queries.len(), "one arrival per query");
    let nodes = fleet.nodes.len();
    let channels = fleet.channels_per_node;
    let dispatch = cfg.dispatch;

    // Both placement levels are built once per run from the query
    // stream's table profile; every query then consults them.
    let usage = TableUsage::from_traces(queries);
    let plan = FleetPlacementPlan::build(
        nodes,
        channels,
        dispatch.channel_capacity.map(ByteSize::get),
        &usage,
        dispatch.node_policy,
        dispatch.within_policy,
    )
    .map_err(SimError::Config)?;

    // Earliest cycle each (node, channel) is free.
    let mut free_at: Vec<Vec<Cycle>> = vec![vec![0; channels]; nodes];
    // For LeastOutstanding: (completion, lookups) of work in flight per
    // node — the same size-aware bookkeeping the single-node scheduler
    // keeps per channel, lifted to node granularity.
    let mut in_flight: Vec<Vec<(Cycle, u64)>> = vec![Vec::new(); nodes];
    let mut completions = vec![0 as Cycle; queries.len()];
    let mut node_queries = vec![0u64; nodes];
    let mut merged = RunReport::for_system(fleet.name.clone());

    for (q_idx, query) in queries.iter().enumerate() {
        let dispatch_at = arrivals[q_idx];

        // Level 1: route each batch to one node replica of its table.
        let mut per_node_batches: Vec<SlsTrace> = vec![SlsTrace::default(); nodes];
        for batch in query.batches.iter().cloned() {
            let table = batch.table();
            let reps = plan.node_replicas(table);
            let node = match dispatch.router {
                RouterPolicy::HashAffinity => *reps
                    .get(q_idx % reps.len().max(1))
                    .unwrap_or_else(|| panic!("table {table} missing from fleet plan")),
                RouterPolicy::LeastOutstanding => *reps
                    .iter()
                    .min_by_key(|&&n| {
                        // Dispatch times are non-decreasing, so drained
                        // work can never count again.
                        in_flight[n].retain(|(done, _)| *done > dispatch_at);
                        let backlog: u64 = in_flight[n].iter().map(|(_, l)| l).sum();
                        (backlog, n)
                    })
                    .unwrap_or_else(|| panic!("table {table} missing from fleet plan")),
                RouterPolicy::PlacementScatter => *reps
                    .iter()
                    .min_by_key(|&&n| {
                        let earliest = plan
                            .per_node(n)
                            .replicas(table)
                            .iter()
                            .map(|&c| free_at[n][c])
                            .min()
                            .unwrap_or(Cycle::MAX);
                        (earliest, n)
                    })
                    .unwrap_or_else(|| panic!("table {table} missing from fleet plan")),
            };
            per_node_batches[node].batches.push(batch);
        }

        // Level 2: within each touched node, assign batches to the
        // least-backlogged owning channel — byte-for-byte the
        // single-node sharded scatter.
        let lookups = query.total_lookups();
        let mut scattered = 0u64;
        // (node, per-channel shards sorted by channel, result bytes).
        let mut node_jobs: Vec<(usize, Shards, u64)> = Vec::new();
        for (n, node_trace) in per_node_batches.into_iter().enumerate() {
            if node_trace.batches.is_empty() {
                continue;
            }
            node_queries[n] += 1;
            let mut by_channel: Vec<SlsTrace> = vec![SlsTrace::default(); channels];
            let mut result_bytes = 0u64;
            for batch in node_trace.batches {
                let table = batch.table();
                let replicas = plan.per_node(n).replicas(table);
                let &channel = replicas
                    .iter()
                    .min_by_key(|&&c| (free_at[n][c], c))
                    .unwrap_or_else(|| panic!("table {table} missing from node {n} plan"));
                result_bytes += batch.batch.output_bytes();
                by_channel[channel].batches.push(batch);
            }
            let shards: Shards = by_channel
                .into_iter()
                .enumerate()
                .filter(|(_, s)| !s.batches.is_empty())
                .collect();
            node_jobs.push((n, shards, result_bytes));
        }

        // Simulate every touched node as one pool task; each node fans
        // its shards out as nested tasks (try_run_shards), and reports
        // come back in submission order regardless of completion order.
        let reports: Vec<Vec<RunReport>> = {
            let mut pending = node_jobs.iter().peekable();
            let mut paired: Vec<(&mut dyn SlsBackend, &Shards)> = Vec::new();
            for (n, node) in fleet.nodes.iter_mut().enumerate() {
                if pending.peek().is_some_and(|(jn, _, _)| *jn == n) {
                    let (_, shards, _) = pending.next().unwrap();
                    paired.push((node.as_mut(), shards));
                }
            }
            let tasks: Vec<_> = paired
                .into_iter()
                .map(|(node, shards)| move || node.try_run_shards(shards))
                .collect();
            recnmp_exec::current().run_vec(tasks)?
        };

        // Queueing arithmetic, serially in (node, channel) order: each
        // shard queues on its channel, each node completes at its
        // slowest shard plus the per-node gather, and the query
        // completes at its slowest node plus the network gather (waived
        // when the router is co-located with a single node).
        let mut slowest_node = dispatch_at;
        let mut total_result_bytes = 0u64;
        for ((n, shards, result_bytes), node_reports) in node_jobs.iter().zip(reports) {
            let mut node_slowest = dispatch_at;
            let mut fanout: Cycle = 0;
            let mut node_lookups = 0u64;
            for ((channel, shard), report) in shards.iter().zip(node_reports) {
                scattered += shard.total_lookups();
                node_lookups += shard.total_lookups();
                let start = dispatch_at.max(free_at[*n][*channel]);
                let complete = start + report.total_cycles;
                free_at[*n][*channel] = complete;
                node_slowest = node_slowest.max(complete);
                fanout += 1;
                merged.absorb_parallel(report);
            }
            let node_complete =
                node_slowest + dispatch.gather.base + dispatch.gather.per_shard * fanout;
            if dispatch.router == RouterPolicy::LeastOutstanding {
                in_flight[*n].push((node_complete, node_lookups));
            }
            slowest_node = slowest_node.max(node_complete);
            total_result_bytes += result_bytes;
        }
        debug_assert_eq!(scattered, lookups, "fleet scatter must conserve lookups");

        completions[q_idx] = if nodes > 1 {
            slowest_node + dispatch.network.cost_of(total_result_bytes)
        } else {
            slowest_node
        };
    }

    let latencies: Vec<Cycle> = completions
        .iter()
        .zip(arrivals)
        .map(|(&done, &arr)| done - arr)
        .collect();
    merged.total_cycles = completions.iter().copied().max().unwrap_or(0);
    merged.query_completions = completions.clone();

    Ok(FleetReport {
        system: fleet.name.clone(),
        router: dispatch.router,
        offered_qps: cfg.qps,
        arrivals: arrivals.to_vec(),
        completions,
        latencies,
        node_queries,
        replicated_tables: plan.replicated_tables(),
        outcomes: vec![QueryOutcome::Completed; queries.len()],
        failures: Vec::new(),
        report: merged,
    })
}

/// Serves `cfg.queries` open-loop queries on `fleet` under a fault
/// schedule and resilience policies, aggregating per-query failures
/// into the report instead of aborting the run.
///
/// Arrival schedule and query streams derive from `cfg.seed` exactly as
/// in [`serve_fleet`]; with [`ResilienceConfig::zero`] the completion
/// schedule is byte-identical to the plain scheduler (pinned by
/// `resilience_determinism`). The resilience semantics on top:
///
/// * **Health-aware failover** — the router consults a
///   [`HealthTracker`]: a batch whose preferred replica is crashed (or
///   flagged degraded while a healthier replica exists) re-routes to a
///   surviving replica under the same router arithmetic restricted to
///   the live set, counted as a failover. The *first* query to discover
///   a fresh crash pays [`redispatch_penalty`](ResilienceConfig::redispatch_penalty)
///   on its dispatch; later queries route around the node for free. A
///   table with no surviving replica fails its query
///   ([`SimError::QueryFailed`]) — counted, not panicked.
/// * **Retry** — each shard attempt gets
///   [`RetryPolicy::timeout`](super::faults::RetryPolicy::timeout)
///   cycles from its dispatch; an attempt that
///   blows the budget (queue wait included) or starts inside an
///   injected timeout window aborts at `min(completion, dispatch +
///   timeout)`, occupies its channel for whatever service it wasted,
///   and re-dispatches after exponential backoff onto the
///   least-backlogged replica channel still owning the shard's tables.
///   Retry exhaustion fails the query ([`SimError::DeadlineExceeded`]).
/// * **Hedging** — when a node job would complete later than the
///   configured quantile of recently observed node-job latencies, the
///   job is duplicated onto a surviving replica node holding all its
///   tables; the duplicate dispatches at `dispatch + delay`, both
///   copies pay their channel occupancy, and the earlier completion
///   wins.
/// * **SLO guard** — with an [`SloPolicy`](super::faults::SloPolicy), a
///   query whose *optimistic* estimated queue delay (earliest free
///   replica channel per batch) already exceeds the deadline is
///   rejected at admission; one whose *actual* routed service start
///   would land past the deadline is shed at dispatch. Neither runs any
///   cycle-level work.
///
/// # Errors
///
/// Returns [`SimError::Stalled`] if a node's cycle-level run stalls, or
/// [`SimError::Config`] when placement cannot fit the workload —
/// run-level problems only; per-query failures land in
/// [`FleetReport::failures`].
pub fn serve_fleet_resilient(
    fleet: &mut Fleet,
    cfg: &FleetConfig,
    res: &ResilienceConfig,
) -> Result<FleetReport, SimError> {
    let mut arrival_rng = recnmp_types::rng::DetRng::seed(cfg.seed ^ 0xa5a5_5a5a_0f0f_f0f0);
    let arrivals = cfg
        .process
        .arrival_times(cfg.qps, cfg.queries, &mut arrival_rng);
    let queries = QueryStream::new(cfg.shape, cfg.seed).take_queries(cfg.queries);
    serve_fleet_resilient_arrivals(fleet, cfg, res, &arrivals, &queries)
}

/// One replica pick under `router`, restricted to the candidate `pool`
/// (non-empty): the same arithmetic the plain scheduler applies to the
/// full replica set.
#[allow(clippy::too_many_arguments)]
fn pick_replica(
    router: RouterPolicy,
    pool: &[usize],
    q_idx: usize,
    table: recnmp_types::TableId,
    plan: &FleetPlacementPlan,
    in_flight: &mut [Vec<(Cycle, u64)>],
    free_at: &[Vec<Cycle>],
    dispatch_at: Cycle,
) -> usize {
    match router {
        RouterPolicy::HashAffinity => pool[q_idx % pool.len()],
        RouterPolicy::LeastOutstanding => *pool
            .iter()
            .min_by_key(|&&n| {
                in_flight[n].retain(|(done, _)| *done > dispatch_at);
                let backlog: u64 = in_flight[n].iter().map(|(_, l)| l).sum();
                (backlog, n)
            })
            .unwrap(),
        RouterPolicy::PlacementScatter => *pool
            .iter()
            .min_by_key(|&&n| {
                let earliest = plan
                    .per_node(n)
                    .replicas(table)
                    .iter()
                    .map(|&c| free_at[n][c])
                    .min()
                    .unwrap_or(Cycle::MAX);
                (earliest, n)
            })
            .unwrap(),
    }
}

/// Runs one shard's attempt loop: queue on the channel, apply the fault
/// plan's degradation multiplier, abort on an injected timeout window or
/// a blown per-attempt budget, back off exponentially and re-dispatch on
/// the least-backlogged replica channel still owning the shard's tables.
///
/// Returns `Ok((completion, service))` of the winning attempt, or
/// `Err(attempts)` after retry exhaustion. `retries` counts aborted
/// attempts that were re-dispatched.
#[allow(clippy::too_many_arguments)]
fn run_shard_attempts(
    node: usize,
    first_channel: usize,
    shard_tables: &[recnmp_types::TableId],
    base_service: Cycle,
    dispatch: Cycle,
    free_at: &mut [Vec<Cycle>],
    plan: &FleetPlacementPlan,
    res: &ResilienceConfig,
    retries: &mut u64,
) -> Result<(Cycle, Cycle), u32> {
    let retry = res.retry;
    let budget = retry.timeout;
    let mut t = dispatch;
    let mut channel = first_channel;
    for attempt in 0..retry.max_attempts.max(1) {
        let start = t.max(free_at[node][channel]);
        let mult = res.faults.degrade_multiplier(node, channel, start);
        let service = base_service.saturating_mul(mult);
        let complete = start + service;
        let fault_timeout = res.faults.times_out(node, channel, start);
        let over_budget = budget > 0 && complete.saturating_sub(t) > budget;
        if !fault_timeout && !over_budget {
            free_at[node][channel] = complete;
            return Ok((complete, service));
        }
        // The attempt aborts when the client's budget expires or the
        // faulty run surfaces its error, whichever is sooner; the
        // channel stays busy for whatever service it wasted (nothing,
        // if the attempt was still queued).
        let fail_at = if budget > 0 {
            complete.min(t + budget)
        } else {
            complete
        };
        if fail_at > start {
            free_at[node][channel] = fail_at;
        }
        if attempt + 1 == retry.max_attempts.max(1) {
            return Err(attempt + 1);
        }
        *retries += 1;
        t = fail_at + retry.backoff_before(attempt);
        // Re-dispatch onto the least-backlogged channel owning every
        // table of this shard (often the same channel — transient
        // windows pass; degraded channels lose to healthier replicas).
        if let Some(next) = retry_channel(node, shard_tables, plan, free_at) {
            channel = next;
        }
    }
    unreachable!("attempt loop returns before exhausting its range");
}

/// The least-backlogged channel of `node` owning every table in
/// `tables`; `None` when no single channel holds them all.
fn retry_channel(
    node: usize,
    tables: &[recnmp_types::TableId],
    plan: &FleetPlacementPlan,
    free_at: &[Vec<Cycle>],
) -> Option<usize> {
    let mut common: Option<Vec<usize>> = None;
    for &t in tables {
        let reps = plan.per_node(node).replicas(t);
        common = Some(match common {
            None => reps.to_vec(),
            Some(prev) => prev.into_iter().filter(|c| reps.contains(c)).collect(),
        });
    }
    common?.into_iter().min_by_key(|&c| (free_at[node][c], c))
}

/// Nearest-rank quantile of an unsorted latency window.
fn window_quantile(window: &[Cycle], q: f64) -> Cycle {
    let mut sorted = window.to_vec();
    sorted.sort_unstable();
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The resilient fleet scheduler core: the plain queueing arithmetic of
/// [`serve_fleet_arrivals`] plus fault injection, health-aware failover,
/// retry/hedging and the SLO guard. See [`serve_fleet_resilient`] for
/// the semantics.
pub(super) fn serve_fleet_resilient_arrivals(
    fleet: &mut Fleet,
    cfg: &FleetConfig,
    res: &ResilienceConfig,
    arrivals: &[Cycle],
    queries: &[SlsTrace],
) -> Result<FleetReport, SimError> {
    assert_eq!(arrivals.len(), queries.len(), "one arrival per query");
    let nodes = fleet.nodes.len();
    let channels = fleet.channels_per_node;
    let dispatch = cfg.dispatch;

    let usage = TableUsage::from_traces(queries);
    let plan = FleetPlacementPlan::build(
        nodes,
        channels,
        dispatch.channel_capacity.map(ByteSize::get),
        &usage,
        dispatch.node_policy,
        dispatch.within_policy,
    )
    .map_err(SimError::Config)?;

    let mut free_at: Vec<Vec<Cycle>> = vec![vec![0; channels]; nodes];
    let mut in_flight: Vec<Vec<(Cycle, u64)>> = vec![Vec::new(); nodes];
    let mut completions = vec![0 as Cycle; queries.len()];
    let mut node_queries = vec![0u64; nodes];
    let mut merged = RunReport::for_system(fleet.name.clone());
    let mut outcomes = vec![QueryOutcome::Completed; queries.len()];
    let mut failures: Vec<SimError> = Vec::new();
    let mut health = HealthTracker::new(nodes, res.ewma_alpha, res.degraded_after);
    // Recently observed node-job latencies the hedge delay anchors at.
    let mut hedge_window: Vec<Cycle> = Vec::new();

    'queries: for (q_idx, query) in queries.iter().enumerate() {
        let arrival = arrivals[q_idx];
        let dispatch_at = arrival;
        // Cycles this query pays for discovering a fresh crash (at most
        // one detection per query).
        let mut penalty: Cycle = 0;

        // Level 1: route each batch to a *live* node replica, the plain
        // router arithmetic first and the failover path only when the
        // preferred replica is crashed or degraded.
        let mut per_node_batches: Vec<SlsTrace> = vec![SlsTrace::default(); nodes];
        for batch in query.batches.iter().cloned() {
            let table = batch.table();
            let reps = plan.node_replicas(table);
            assert!(!reps.is_empty(), "table {table} missing from fleet plan");
            let preferred = pick_replica(
                dispatch.router,
                reps,
                q_idx,
                table,
                &plan,
                &mut in_flight,
                &free_at,
                dispatch_at,
            );
            let preferred_down = res.faults.crashed(preferred, dispatch_at);
            let node = if !preferred_down && health.health(preferred) != NodeHealth::Degraded {
                preferred
            } else {
                if preferred_down && !health.known_crashed(preferred) {
                    health.mark_crashed(preferred);
                    penalty = res.redispatch_penalty;
                }
                let alive: Vec<usize> = reps
                    .iter()
                    .copied()
                    .filter(|&n| !res.faults.crashed(n, dispatch_at))
                    .collect();
                if alive.is_empty() {
                    outcomes[q_idx] = QueryOutcome::Failed;
                    failures.push(SimError::QueryFailed {
                        query: q_idx,
                        table,
                    });
                    merged.queries_failed += 1;
                    completions[q_idx] = arrival;
                    continue 'queries;
                }
                let healthy: Vec<usize> = alive
                    .iter()
                    .copied()
                    .filter(|&n| health.health(n) == NodeHealth::Healthy)
                    .collect();
                let pool = if healthy.is_empty() { &alive } else { &healthy };
                if !preferred_down && pool.contains(&preferred) {
                    preferred
                } else {
                    merged.failovers += 1;
                    pick_replica(
                        dispatch.router,
                        pool,
                        q_idx,
                        table,
                        &plan,
                        &mut in_flight,
                        &free_at,
                        dispatch_at,
                    )
                }
            };
            per_node_batches[node].batches.push(batch);
        }
        let dispatch_eff = dispatch_at + penalty;

        // SLO admission: the optimistic estimate — every batch served by
        // the earliest-free channel of any live replica. If even that
        // already blows the deadline, reject without running anything.
        if let Some(slo) = res.slo {
            let mut est_start = dispatch_eff;
            for batch in &query.batches {
                let table = batch.table();
                let best = plan
                    .node_replicas(table)
                    .iter()
                    .filter(|&&n| !res.faults.crashed(n, dispatch_at))
                    .flat_map(|&n| {
                        plan.per_node(n)
                            .replicas(table)
                            .iter()
                            .map(move |&c| (n, c))
                    })
                    .map(|(n, c)| free_at[n][c])
                    .min()
                    .unwrap_or(0);
                est_start = est_start.max(best.max(dispatch_eff));
            }
            if est_start.saturating_sub(arrival) > slo.deadline {
                outcomes[q_idx] = QueryOutcome::Rejected;
                merged.queries_rejected += 1;
                completions[q_idx] = arrival;
                continue 'queries;
            }
        }

        // Level 2: within each touched node, assign batches to the
        // least-backlogged owning channel (the plain scatter).
        let lookups = query.total_lookups();
        let mut scattered = 0u64;
        let mut node_jobs: Vec<(usize, Shards, u64)> = Vec::new();
        for (n, node_trace) in per_node_batches.into_iter().enumerate() {
            if node_trace.batches.is_empty() {
                continue;
            }
            let mut by_channel: Vec<SlsTrace> = vec![SlsTrace::default(); channels];
            let mut result_bytes = 0u64;
            for batch in node_trace.batches {
                let table = batch.table();
                let replicas = plan.per_node(n).replicas(table);
                let &channel = replicas
                    .iter()
                    .min_by_key(|&&c| (free_at[n][c], c))
                    .unwrap_or_else(|| panic!("table {table} missing from node {n} plan"));
                result_bytes += batch.batch.output_bytes();
                by_channel[channel].batches.push(batch);
            }
            let shards: Shards = by_channel
                .into_iter()
                .enumerate()
                .filter(|(_, s)| !s.batches.is_empty())
                .collect();
            node_jobs.push((n, shards, result_bytes));
        }

        // SLO shedding: the *actual* routed service start. A query whose
        // slowest shard would begin past the deadline is dropped at
        // dispatch — it cannot complete in time and would only add load.
        if let Some(slo) = res.slo {
            let actual_start = node_jobs
                .iter()
                .flat_map(|(n, shards, _)| {
                    shards
                        .iter()
                        .map(|(c, _)| dispatch_eff.max(free_at[*n][*c]))
                })
                .max()
                .unwrap_or(dispatch_eff);
            if actual_start.saturating_sub(arrival) > slo.deadline {
                outcomes[q_idx] = QueryOutcome::Shed;
                merged.queries_shed += 1;
                completions[q_idx] = arrival;
                continue 'queries;
            }
        }

        for (n, _, _) in &node_jobs {
            node_queries[*n] += 1;
        }

        // Simulate every touched node as one pool task, exactly like the
        // plain scheduler (reports return in submission order).
        let reports: Vec<Vec<RunReport>> = {
            let mut pending = node_jobs.iter().peekable();
            let mut paired: Vec<(&mut dyn SlsBackend, &Shards)> = Vec::new();
            for (n, node) in fleet.nodes.iter_mut().enumerate() {
                if pending.peek().is_some_and(|(jn, _, _)| *jn == n) {
                    let (_, shards, _) = pending.next().unwrap();
                    paired.push((node.as_mut(), shards));
                }
            }
            let tasks: Vec<_> = paired
                .into_iter()
                .map(|(node, shards)| move || node.try_run_shards(shards))
                .collect();
            recnmp_exec::current().run_vec(tasks)?
        };

        // Queueing arithmetic with the resilience layer folded in.
        let mut slowest_node = dispatch_eff;
        let mut total_result_bytes = 0u64;
        let mut q_failed: Option<SimError> = None;
        for ((n, shards, result_bytes), node_reports) in node_jobs.iter().zip(reports) {
            let mut node_slowest = dispatch_eff;
            let mut node_service: Cycle = 0;
            let mut fanout: Cycle = 0;
            let mut node_lookups = 0u64;
            for ((channel, shard), report) in shards.iter().zip(node_reports) {
                scattered += shard.total_lookups();
                node_lookups += shard.total_lookups();
                let base = report.total_cycles;
                merged.absorb_parallel(report);
                let shard_tables: Vec<recnmp_types::TableId> =
                    shard.batches.iter().map(|b| b.table()).collect();
                match run_shard_attempts(
                    *n,
                    *channel,
                    &shard_tables,
                    base,
                    dispatch_eff,
                    &mut free_at,
                    &plan,
                    res,
                    &mut merged.retries,
                ) {
                    Ok((complete, service)) => {
                        node_slowest = node_slowest.max(complete);
                        node_service = node_service.max(service);
                    }
                    Err(attempts) => {
                        q_failed = Some(SimError::DeadlineExceeded {
                            query: q_idx,
                            deadline: res.retry.timeout,
                            attempts,
                        });
                    }
                }
                fanout += 1;
            }

            // Hedge a straggler node job onto a surviving replica
            // holding all its tables; first completion wins, both pay
            // their channel occupancy.
            if let (Some(hedge), None) = (res.hedge, &q_failed) {
                if hedge_window.len() >= hedge.min_samples {
                    let delay = window_quantile(&hedge_window, hedge.quantile);
                    if node_slowest.saturating_sub(dispatch_eff) > delay && node_service > 0 {
                        let job_tables: Vec<recnmp_types::TableId> = shards
                            .iter()
                            .flat_map(|(_, s)| s.batches.iter().map(|b| b.table()))
                            .collect();
                        if let Some((alt, alt_channels)) = hedge_target(
                            *n,
                            &job_tables,
                            &plan,
                            res,
                            dispatch_at,
                            &free_at,
                            &health,
                        ) {
                            merged.hedges += 1;
                            let mut hstart = dispatch_eff + delay;
                            for &c in &alt_channels {
                                hstart = hstart.max(free_at[alt][c]);
                            }
                            let hcomplete = hstart + node_service;
                            for &c in &alt_channels {
                                free_at[alt][c] = hcomplete;
                            }
                            node_slowest = node_slowest.min(hcomplete).max(dispatch_eff);
                        }
                    }
                }
            }

            if node_service > 0 {
                health.observe(*n, node_service, node_lookups);
                hedge_window.push(node_slowest.saturating_sub(dispatch_eff));
                if let Some(hedge) = res.hedge {
                    if hedge_window.len() > hedge.window {
                        hedge_window.remove(0);
                    }
                } else if hedge_window.len() > 64 {
                    hedge_window.remove(0);
                }
            }

            let node_complete =
                node_slowest + dispatch.gather.base + dispatch.gather.per_shard * fanout;
            if dispatch.router == RouterPolicy::LeastOutstanding {
                in_flight[*n].push((node_complete, node_lookups));
            }
            slowest_node = slowest_node.max(node_complete);
            total_result_bytes += result_bytes;
        }
        debug_assert_eq!(scattered, lookups, "fleet scatter must conserve lookups");

        if let Some(err) = q_failed {
            outcomes[q_idx] = QueryOutcome::Failed;
            failures.push(err);
            merged.queries_failed += 1;
            completions[q_idx] = arrival;
            continue 'queries;
        }

        completions[q_idx] = if nodes > 1 {
            slowest_node + dispatch.network.cost_of(total_result_bytes)
        } else {
            slowest_node
        };
    }

    let latencies: Vec<Cycle> = completions
        .iter()
        .zip(arrivals)
        .map(|(&done, &arr)| done - arr)
        .collect();
    merged.total_cycles = completions.iter().copied().max().unwrap_or(0);
    merged.query_completions = completions.clone();

    Ok(FleetReport {
        system: fleet.name.clone(),
        router: dispatch.router,
        offered_qps: cfg.qps,
        arrivals: arrivals.to_vec(),
        completions,
        latencies,
        node_queries,
        replicated_tables: plan.replicated_tables(),
        outcomes,
        failures,
        report: merged,
    })
}

/// A hedge target for a node job: a live node other than `primary` that
/// replicates *every* table of the job, preferring healthy nodes, then
/// the one whose involved channels free earliest. Returns the node and
/// the channels the duplicate occupies there.
fn hedge_target(
    primary: usize,
    job_tables: &[recnmp_types::TableId],
    plan: &FleetPlacementPlan,
    res: &ResilienceConfig,
    dispatch_at: Cycle,
    free_at: &[Vec<Cycle>],
    health: &HealthTracker,
) -> Option<(usize, Vec<usize>)> {
    let mut common: Option<Vec<usize>> = None;
    for &t in job_tables {
        let reps = plan.node_replicas(t);
        common = Some(match common {
            None => reps.to_vec(),
            Some(prev) => prev.into_iter().filter(|n| reps.contains(n)).collect(),
        });
    }
    let candidates: Vec<usize> = common?
        .into_iter()
        .filter(|&n| n != primary && !res.faults.crashed(n, dispatch_at))
        .collect();
    let healthy: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&n| health.health(n) == NodeHealth::Healthy)
        .collect();
    let pool = if healthy.is_empty() {
        candidates
    } else {
        healthy
    };
    pool.into_iter()
        .map(|n| {
            let chans: std::collections::BTreeSet<usize> = job_tables
                .iter()
                .map(|&t| {
                    *plan
                        .per_node(n)
                        .replicas(t)
                        .iter()
                        .min_by_key(|&&c| (free_at[n][c], c))
                        .expect("replicated table owns a channel")
                })
                .collect();
            let ready = chans.iter().map(|&c| free_at[n][c]).max().unwrap_or(0);
            (ready, n, chans.into_iter().collect::<Vec<usize>>())
        })
        .min_by_key(|(ready, n, _)| (*ready, *n))
        .map(|(_, n, chans)| (n, chans))
}

/// One fleet throughput–latency curve.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCurve {
    /// Fleet label.
    pub system: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Dispatch label (`"fleet-sharded"`, `"fleet-replicated(2)"`, ...).
    pub placement: String,
    /// Router label.
    pub router: &'static str,
    /// Reference saturation throughput the utilization fractions anchor
    /// to.
    pub saturation_qps: f64,
    /// Measured points, in ascending offered-QPS order.
    pub points: Vec<SweepPoint>,
}

impl FleetCurve {
    /// The saturation knee: the highest offered load the fleet still
    /// sustained (achieved ≥ 90% of offered). `None` when even the
    /// lightest point was unsustainable.
    pub fn knee(&self) -> Option<&SweepPoint> {
        self.points.iter().rev().find(|p| p.sustained())
    }
}

/// Probes the back-to-back service capacity of a fresh fleet under
/// `dispatch`: all `queries` queries arrive at cycle 0 and the
/// completion throughput of the resulting busy period is the saturation
/// rate.
///
/// # Errors
///
/// Returns [`SimError::Stalled`] if a cycle-level run stalls, or
/// [`SimError::Config`] when placement fails.
pub fn fleet_saturation(
    make_fleet: &mut FleetFactory<'_>,
    dispatch: FleetDispatch,
    shape: QueryShape,
    queries: usize,
    seed: u64,
) -> Result<f64, SimError> {
    let mut fleet = make_fleet();
    let cfg = FleetConfig {
        process: ArrivalProcess::Uniform,
        qps: 1.0, // unused: arrivals are pinned to cycle 0 below
        queries,
        shape,
        dispatch,
        seed,
    };
    let arrivals = vec![0; queries];
    let trace_queries = QueryStream::new(shape, seed).take_queries(queries);
    let report = serve_fleet_arrivals(&mut fleet, &cfg, &arrivals, &trace_queries)?;
    Ok(report.achieved_qps())
}

/// Measures one fleet throughput–latency curve at explicit offered
/// loads, anchored to a caller-provided `saturation` rate.
///
/// Load points are independent simulations over fresh fleets, each one
/// task on the deterministic worker pool; a point's fleet then nests
/// its own node and channel tasks into the same pool, so the whole
/// sweep runs under one fixed thread budget and the curve is
/// byte-identical to a serial sweep at any worker count.
///
/// # Errors
///
/// Returns [`SimError::Stalled`] if any cycle-level run stalls, or
/// [`SimError::Config`] when placement fails.
#[allow(clippy::too_many_arguments)]
pub fn fleet_sweep_at(
    make_fleet: &mut FleetFactory<'_>,
    dispatch: FleetDispatch,
    process: ArrivalProcess,
    shape: QueryShape,
    saturation: f64,
    offered: &[f64],
    queries: usize,
    seed: u64,
) -> Result<FleetCurve, SimError> {
    let mut jobs: Vec<(Fleet, FleetConfig)> = offered
        .iter()
        .map(|&qps| {
            assert!(qps > 0.0, "offered loads must be positive");
            let cfg = FleetConfig {
                process,
                qps,
                queries,
                shape,
                dispatch,
                seed,
            };
            (make_fleet(), cfg)
        })
        .collect();
    let tasks: Vec<_> = jobs
        .iter_mut()
        .map(|(fleet, cfg)| move || serve_fleet(fleet, cfg))
        .collect();
    let reports = recnmp_exec::current().run_vec(tasks)?;
    let mut points = Vec::with_capacity(offered.len());
    let mut system = String::new();
    let mut nodes = 0;
    for (&qps, report) in offered.iter().zip(reports) {
        system = report.system.clone();
        nodes = report.node_queries.len();
        points.push(SweepPoint {
            offered_qps: qps,
            utilization: qps / saturation,
            achieved_qps: report.achieved_qps(),
            summary: report.summary(),
        });
    }
    Ok(FleetCurve {
        system,
        nodes,
        placement: dispatch.label(),
        router: dispatch.router.name(),
        saturation_qps: saturation,
        points,
    })
}

/// Sweeps one fleet under every dispatch in `dispatches`, all at the
/// same absolute offered loads: fractions of the **first** dispatch's
/// saturation rate. Callers put the informed configuration (hot-table
/// replication) first so its knee lands inside the sweep by
/// construction and every alternative is measured at the same operating
/// points — the same anchoring convention as
/// [`tiered_sweep`](super::sweep::tiered_sweep).
///
/// # Errors
///
/// Returns the first failing sweep's error.
pub fn fleet_sweep(
    make_fleet: &mut FleetFactory<'_>,
    dispatches: &[FleetDispatch],
    spec: &SweepSpec,
) -> Result<Vec<FleetCurve>, SimError> {
    let anchor = dispatches.first().expect("at least one dispatch");
    let saturation = fleet_saturation(
        make_fleet,
        *anchor,
        spec.shape,
        spec.probe_queries,
        spec.seed,
    )?;
    let offered: Vec<f64> = spec.utilizations.iter().map(|&u| u * saturation).collect();
    dispatches
        .iter()
        .map(|&dispatch| {
            fleet_sweep_at(
                make_fleet,
                dispatch,
                spec.process,
                spec.shape,
                saturation,
                &offered,
                spec.queries,
                spec.seed,
            )
        })
        .collect()
}

/// Everything that parameterizes one resilience sweep: the workload, the
/// SLO derivation, and the severity of the injected faults. The fault
/// *schedule* is fixed by protocol — the last node crashes at the mean
/// arrival cycle of query N/2, and the `crash+slow` level additionally
/// sticks channel 0 of node 0 at `degrade_multiplier`x service time from
/// the crash onward — so two runs of the same spec are identical.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceSpec {
    /// Arrival process.
    pub process: ArrivalProcess,
    /// Offered load (whole-fleet queries per second).
    pub qps: f64,
    /// Queries per run.
    pub queries: usize,
    /// Query shape.
    pub shape: QueryShape,
    /// Arrival/placement seed.
    pub seed: u64,
    /// The SLO deadline is this multiple of the fault-free replicated
    /// run's p99.
    pub deadline_p99_multiple: u64,
    /// Post-crash goodput must keep at least this fraction of the
    /// pre-crash rate to count as sustained.
    pub sustain_fraction: f64,
    /// Service-time multiplier of the stuck-at-slow channel in the
    /// `crash+slow` level.
    pub degrade_multiplier: u64,
}

/// One arm of the resilience sweep: a fault level crossed with a
/// placement flavor and hedging on/off, plus its measured outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceArm {
    /// Fault-level label (`"none"`, `"crash"`, `"crash+slow"`).
    pub faults: &'static str,
    /// Placement label (`"fleet-replicated"` or `"fleet-sharded"`).
    pub placement: &'static str,
    /// Whether p95 hedging was on.
    pub hedged: bool,
    /// Fraction of offered queries that completed.
    pub availability: f64,
    /// Goodput-under-SLO over arrivals before the crash cycle.
    pub pre_goodput: f64,
    /// Goodput-under-SLO over arrivals from the crash cycle on.
    pub post_goodput: f64,
    /// `post_goodput >= sustain_fraction * pre_goodput`.
    pub sustained: bool,
    /// The full fleet report (outcome counters, latencies).
    pub report: FleetReport,
}

impl ResilienceArm {
    /// Post/pre goodput ratio (1.0 for an idle pre window).
    pub fn goodput_ratio(&self) -> f64 {
        if self.pre_goodput > 0.0 {
            self.post_goodput / self.pre_goodput
        } else {
            1.0
        }
    }
}

/// The outcome of [`resilience_sweep`]: the derived SLO anchors plus one
/// [`ResilienceArm`] per (fault level x placement x hedging) combination,
/// in level-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceSweep {
    /// SLO deadline in cycles (`deadline_p99_multiple` x the fault-free
    /// replicated p99).
    pub deadline: Cycle,
    /// The fault-free replicated p99 the deadline derives from.
    pub baseline_p99: Cycle,
    /// Crash cycle (mean arrival of query N/2).
    pub crash_at: Cycle,
    /// The node the crash levels take down (the last node).
    pub crashed_node: usize,
    /// The sustain bar the arms were judged against.
    pub sustain_fraction: f64,
    /// All measured arms.
    pub arms: Vec<ResilienceArm>,
}

impl ResilienceSweep {
    /// The arm at one (fault level, placement, hedging) coordinate.
    pub fn arm(&self, faults: &str, placement: &str, hedged: bool) -> Option<&ResilienceArm> {
        self.arms
            .iter()
            .find(|a| a.faults == faults && a.placement == placement && a.hedged == hedged)
    }

    /// The crash-level replicated+hedged arm — the configuration the
    /// resilience verdict claims sustains the crash.
    pub fn verdict_arm(&self) -> &ResilienceArm {
        self.arm("crash", "fleet-replicated", true)
            .expect("crash-level replicated+hedged arm ran")
    }

    /// The crash-level sharded unhedged arm — the configuration the
    /// resilience verdict claims collapses.
    pub fn verdict_baseline(&self) -> &ResilienceArm {
        self.arm("crash", "fleet-sharded", false)
            .expect("crash-level sharded arm ran")
    }

    /// The resilience claim itself: replicated+hedged sustains the crash
    /// while unreplicated placement does not.
    pub fn verdict_holds(&self) -> bool {
        self.verdict_arm().sustained && !self.verdict_baseline().sustained
    }
}

/// Measures fleet resilience through escalating injected faults: no
/// faults, a mid-horizon node crash, and the crash plus a stuck-at-slow
/// channel on a survivor, each crossed with {replicated-everywhere,
/// sharded} placement and p95 hedging on/off — every arm under the same
/// SLO (deadline = `deadline_p99_multiple` x the fault-free replicated
/// p99) with bounded retries, admission control and deadline shedding.
///
/// Arms are independent simulations over fresh fleets, parallelized as
/// tasks on the deterministic worker pool (each arm's fleet nests its
/// node and channel tasks into the same pool), so the sweep is
/// byte-identical to a serial sweep at any worker count.
///
/// # Errors
///
/// Returns [`SimError::Stalled`] if a cycle-level run stalls, or
/// [`SimError::Config`] when placement fails.
pub fn resilience_sweep(
    make_fleet: &mut FleetFactory<'_>,
    spec: &ResilienceSpec,
) -> Result<ResilienceSweep, SimError> {
    let dispatch_replicated = FleetDispatch::replicated(spec.shape.tables);
    let dispatch_sharded = FleetDispatch::sharded();
    let cfg = |dispatch: FleetDispatch| FleetConfig {
        process: spec.process,
        qps: spec.qps,
        queries: spec.queries,
        shape: spec.shape,
        dispatch,
        seed: spec.seed,
    };
    // Both anchors are pure arithmetic from the spec plus one fault-free
    // run, so the sweep is deterministic end to end.
    let crash_at = ((spec.queries as f64 / 2.0) * qps_to_interarrival_cycles(spec.qps)) as Cycle;
    let mut baseline_fleet = make_fleet();
    let crashed_node = baseline_fleet.nodes() - 1;
    let baseline = serve_fleet(&mut baseline_fleet, &cfg(dispatch_replicated))?;
    let baseline_p99 = baseline.summary().p99;
    let deadline = spec.deadline_p99_multiple * baseline_p99;

    let levels: [(&'static str, FaultPlan); 3] = [
        ("none", FaultPlan::none()),
        (
            "crash",
            FaultPlan::none().with_crash(crashed_node, crash_at),
        ),
        (
            "crash+slow",
            FaultPlan::none()
                .with_crash(crashed_node, crash_at)
                .with_degrade(0, 0, crash_at, u64::MAX, spec.degrade_multiplier),
        ),
    ];
    let placements: [(&'static str, FleetDispatch, bool); 4] = [
        ("fleet-replicated", dispatch_replicated, false),
        ("fleet-replicated", dispatch_replicated, true),
        ("fleet-sharded", dispatch_sharded, false),
        ("fleet-sharded", dispatch_sharded, true),
    ];

    let mut jobs: Vec<(
        Fleet,
        FleetConfig,
        ResilienceConfig,
        &'static str,
        &'static str,
        bool,
    )> = Vec::with_capacity(levels.len() * placements.len());
    for (label, plan) in &levels {
        for &(placement, dispatch, hedged) in &placements {
            let mut res = ResilienceConfig::new(plan.clone())
                .with_retry(RetryPolicy::serving_default(deadline))
                .with_slo(SloPolicy::new(deadline));
            if hedged {
                res = res.with_hedge(HedgePolicy::p95());
            }
            jobs.push((make_fleet(), cfg(dispatch), res, label, placement, hedged));
        }
    }
    let tasks: Vec<_> = jobs
        .iter_mut()
        .map(|(fleet, cfg, res, ..)| move || serve_fleet_resilient(fleet, cfg, res))
        .collect();
    let reports = recnmp_exec::current().run_vec(tasks)?;

    let frac = |good: u64, offered: u64| {
        if offered == 0 {
            1.0
        } else {
            good as f64 / offered as f64
        }
    };
    let arms = jobs
        .iter()
        .zip(reports)
        .map(|(&(_, _, _, faults, placement, hedged), report)| {
            let (good_pre, offered_pre) = report.goodput_in_window(deadline, 0, crash_at);
            let (good_post, offered_post) =
                report.goodput_in_window(deadline, crash_at, Cycle::MAX);
            let pre_goodput = frac(good_pre, offered_pre);
            let post_goodput = frac(good_post, offered_post);
            ResilienceArm {
                faults,
                placement,
                hedged,
                availability: report.availability(),
                pre_goodput,
                post_goodput,
                sustained: post_goodput >= spec.sustain_fraction * pre_goodput,
                report,
            }
        })
        .collect();
    Ok(ResilienceSweep {
        deadline,
        baseline_p99,
        crash_at,
        crashed_node,
        sustain_fraction: spec.sustain_fraction,
        arms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::policy::{ServingMode, ShardedDispatch};
    use crate::serving::scheduler::serve;
    use crate::serving::ServingConfig;

    fn quick_shape() -> QueryShape {
        QueryShape::new(8, 2, 6)
            .with_table_skew(1.0)
            .with_table_sampling(3)
    }

    fn quick_cfg(nodes_hint: f64, queries: usize, dispatch: FleetDispatch) -> FleetConfig {
        FleetConfig {
            process: ArrivalProcess::Poisson,
            qps: 40_000.0 * nodes_hint,
            queries,
            shape: quick_shape(),
            dispatch,
            seed: 23,
        }
    }

    #[test]
    fn fleet_rejects_degenerate_geometry() {
        assert!(Fleet::new(vec![]).is_err());
        let mixed: Vec<Box<dyn SlsBackend>> = vec![
            reference_cluster4(),
            Box::new(recnmp_baselines::HostBaseline::new(1, 2).unwrap()),
        ];
        assert!(Fleet::new(mixed).is_err());
        let fleet = Fleet::reference(2);
        assert_eq!(fleet.nodes(), 2);
        assert_eq!(fleet.channels_per_node(), 4);
        assert_eq!(fleet.name(), "fleet[2 x recnmp-cluster[4]]");
    }

    #[test]
    fn fleet_serving_conserves_lookups_across_nodes() {
        let cfg = quick_cfg(2.0, 10, FleetDispatch::replicated(1));
        let mut fleet = Fleet::reference(2);
        let report = serve_fleet(&mut fleet, &cfg).unwrap();
        let expected: u64 = QueryStream::new(cfg.shape, cfg.seed)
            .take_queries(cfg.queries)
            .iter()
            .map(SlsTrace::total_lookups)
            .sum();
        assert_eq!(report.report.insts, expected);
        assert_eq!(report.latencies.len(), 10);
        // Replication spread at least one table fleet-wide and both
        // nodes served traffic.
        assert!(report.replicated_tables >= 1);
        assert!(report.node_queries.iter().all(|&q| q > 0));
    }

    #[test]
    fn single_node_fleet_matches_bare_cluster() {
        // The keystone invariant: a 1-node fleet is numerically the bare
        // cluster under sharded serving — same arrivals, same placement,
        // same channel queues, no network charge.
        let dispatch = FleetDispatch::sharded();
        let fleet_cfg = quick_cfg(1.0, 12, dispatch);
        let mut fleet = Fleet::reference(1);
        let fleet_report = serve_fleet(&mut fleet, &fleet_cfg).unwrap();

        let mut cluster = reference_cluster4();
        let cluster_cfg = ServingConfig {
            process: fleet_cfg.process,
            qps: fleet_cfg.qps,
            queries: fleet_cfg.queries,
            shape: fleet_cfg.shape,
            mode: ServingMode::Sharded(ShardedDispatch {
                placement: dispatch.within_policy,
                gather: dispatch.gather,
                channel_capacity: dispatch.channel_capacity,
                host_cache: None,
                prefetch: None,
            }),
            coalescing: None,
            max_queue_depth: None,
            seed: fleet_cfg.seed,
        };
        let cluster_report = serve(cluster.as_mut(), &cluster_cfg).unwrap();

        assert_eq!(fleet_report.arrivals, cluster_report.arrivals);
        assert_eq!(fleet_report.completions, cluster_report.completions);
        assert_eq!(fleet_report.latencies, cluster_report.latencies);
        assert_eq!(fleet_report.report.insts, cluster_report.report.insts);
        assert_eq!(
            fleet_report.report.total_cycles,
            cluster_report.report.total_cycles
        );
    }

    #[test]
    fn every_router_serves_and_conserves() {
        for router in RouterPolicy::ALL {
            let dispatch = FleetDispatch {
                router,
                ..FleetDispatch::replicated(1)
            };
            let cfg = quick_cfg(2.0, 8, dispatch);
            let mut fleet = Fleet::reference(2);
            let report = serve_fleet(&mut fleet, &cfg).unwrap();
            let expected: u64 = QueryStream::new(cfg.shape, cfg.seed)
                .take_queries(cfg.queries)
                .iter()
                .map(SlsTrace::total_lookups)
                .sum();
            assert_eq!(report.report.insts, expected, "router {}", router.name());
            assert_eq!(report.router, router);
        }
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let cfg = quick_cfg(2.0, 8, FleetDispatch::replicated(1));
        let mut a = Fleet::reference(2);
        let mut b = Fleet::reference(2);
        assert_eq!(
            serve_fleet(&mut a, &cfg).unwrap(),
            serve_fleet(&mut b, &cfg).unwrap()
        );
    }

    #[test]
    fn multi_node_queries_pay_the_network_gather() {
        // Same workload, same per-node arithmetic: a 2-node fleet with
        // zero network cost must strictly undercut one with the rack
        // default on every completion that left the router's rack slot.
        let mut free = quick_cfg(2.0, 8, FleetDispatch::sharded());
        free.dispatch.network = NetworkCost::new(0, 0);
        let charged = quick_cfg(2.0, 8, FleetDispatch::sharded());
        let mut a = Fleet::reference(2);
        let mut b = Fleet::reference(2);
        let r_free = serve_fleet(&mut a, &free).unwrap();
        let r_charged = serve_fleet(&mut b, &charged).unwrap();
        for (f, c) in r_free.latencies.iter().zip(&r_charged.latencies) {
            assert!(f + charged.dispatch.network.base <= *c + 1);
            assert!(f < c);
        }
    }

    fn assert_conserved(report: &FleetReport) {
        let count = |o: QueryOutcome| report.outcomes.iter().filter(|&&x| x == o).count() as u64;
        assert_eq!(
            report.outcomes.len() as u64,
            count(QueryOutcome::Completed)
                + count(QueryOutcome::Rejected)
                + count(QueryOutcome::Shed)
                + count(QueryOutcome::Failed),
            "every offered query has exactly one outcome"
        );
        assert_eq!(
            report.report.queries_rejected,
            count(QueryOutcome::Rejected)
        );
        assert_eq!(report.report.queries_shed, count(QueryOutcome::Shed));
        assert_eq!(report.report.queries_failed, count(QueryOutcome::Failed));
        assert_eq!(report.failures.len() as u64, count(QueryOutcome::Failed));
    }

    #[test]
    fn zero_resilience_matches_plain_fleet() {
        // The keystone: an all-zero fault plan with inert policies must
        // reproduce the plain scheduler byte for byte, for every router.
        for router in RouterPolicy::ALL {
            for dispatch in [FleetDispatch::replicated(1), FleetDispatch::sharded()] {
                let dispatch = FleetDispatch { router, ..dispatch };
                let cfg = quick_cfg(2.0, 10, dispatch);
                let mut a = Fleet::reference(2);
                let mut b = Fleet::reference(2);
                let plain = serve_fleet(&mut a, &cfg).unwrap();
                let res = serve_fleet_resilient(&mut b, &cfg, &ResilienceConfig::zero()).unwrap();
                assert_eq!(plain, res, "router {}", router.name());
                assert_eq!(res.availability(), 1.0);
            }
        }
    }

    #[test]
    fn crash_fails_unreplicated_queries_and_fails_over_replicated_ones() {
        use super::super::faults::FaultPlan;
        let faults = FaultPlan::none().with_crash(1, 0);

        // Unreplicated: tables homed on the dead node have no surviving
        // replica, so their queries fail (counted, not panicked).
        let cfg = quick_cfg(2.0, 12, FleetDispatch::sharded());
        let mut fleet = Fleet::reference(2);
        let sharded =
            serve_fleet_resilient(&mut fleet, &cfg, &ResilienceConfig::new(faults.clone()))
                .unwrap();
        assert!(
            sharded.availability() < 1.0,
            "dead tables must fail queries"
        );
        assert!(matches!(sharded.failures[0], SimError::QueryFailed { .. }));
        assert_eq!(sharded.node_queries[1], 0, "no query runs on a dead node");
        assert_conserved(&sharded);

        // Fully replicated: every table survives on node 0, so every
        // query fails over and completes.
        let cfg = quick_cfg(2.0, 12, FleetDispatch::replicated(64));
        let mut fleet = Fleet::reference(2);
        let replicated =
            serve_fleet_resilient(&mut fleet, &cfg, &ResilienceConfig::new(faults)).unwrap();
        assert_eq!(replicated.availability(), 1.0);
        assert!(replicated.report.failovers > 0);
        assert_eq!(replicated.node_queries[1], 0);
        assert_conserved(&replicated);
    }

    #[test]
    fn permanent_timeouts_exhaust_retries_into_deadline_failures() {
        use super::super::faults::{FaultPlan, RetryPolicy};
        let mut faults = FaultPlan::none();
        for node in 0..2 {
            for channel in 0..4 {
                faults = faults.with_timeout(node, channel, 0, u64::MAX);
            }
        }
        let cfg = quick_cfg(2.0, 6, FleetDispatch::replicated(64));
        let mut fleet = Fleet::reference(2);
        let res = ResilienceConfig::new(faults).with_retry(RetryPolicy {
            max_attempts: 3,
            timeout: 50_000,
            backoff: 1_000,
        });
        let report = serve_fleet_resilient(&mut fleet, &cfg, &res).unwrap();
        assert_eq!(
            report.availability(),
            0.0,
            "every channel times out forever"
        );
        assert!(report.report.retries > 0, "attempts were retried first");
        assert!(matches!(
            report.failures[0],
            SimError::DeadlineExceeded { attempts: 3, .. }
        ));
        assert_conserved(&report);
    }

    #[test]
    fn slo_guard_rejects_and_sheds_under_overload() {
        use super::super::faults::{FaultPlan, SloPolicy};
        // Oversaturate by 100x with a deadline close to bare service
        // time: the backlog must trip admission control.
        let mut cfg = quick_cfg(2.0, 48, FleetDispatch::replicated(1));
        cfg.qps *= 1_000.0;
        let mut fleet = Fleet::reference(2);
        let res = ResilienceConfig::new(FaultPlan::none()).with_slo(SloPolicy::new(2_000));
        let report = serve_fleet_resilient(&mut fleet, &cfg, &res).unwrap();
        let guarded = report.report.queries_rejected + report.report.queries_shed;
        assert!(guarded > 0, "1000x overload must trip the SLO guard");
        assert!(report.completed() > 0, "early queries still meet the SLO");
        // Guarded queries never ran: their latency entries are zero.
        for (lat, out) in report.latencies.iter().zip(&report.outcomes) {
            if *out != QueryOutcome::Completed {
                assert_eq!(*lat, 0);
            }
        }
        assert_conserved(&report);
    }

    #[test]
    fn hedging_duplicates_stragglers_deterministically() {
        use super::super::faults::{FaultPlan, HedgePolicy};
        // One stuck-at-slow channel on node 0 creates stragglers; with
        // full replication node 1 can absorb the hedges.
        let faults = FaultPlan::none().with_degrade(0, 0, 0, u64::MAX, 16);
        let cfg = quick_cfg(2.0, 48, FleetDispatch::replicated(64));
        let res = ResilienceConfig::new(faults).with_hedge(HedgePolicy {
            quantile: 0.5,
            min_samples: 8,
            window: 32,
        });
        let mut a = Fleet::reference(2);
        let mut b = Fleet::reference(2);
        let r1 = serve_fleet_resilient(&mut a, &cfg, &res).unwrap();
        let r2 = serve_fleet_resilient(&mut b, &cfg, &res).unwrap();
        assert_eq!(r1, r2, "hedged runs are deterministic");
        assert!(
            r1.report.hedges > 0,
            "a 16x-slow channel must trigger hedges"
        );
        assert_eq!(r1.availability(), 1.0);
        assert_conserved(&r1);
    }

    #[test]
    fn fleet_sweep_anchors_every_dispatch_to_the_first() {
        let spec = SweepSpec {
            process: ArrivalProcess::Uniform,
            shape: quick_shape(),
            utilizations: vec![0.5, 1.2],
            queries: 6,
            probe_queries: 6,
            seed: 23,
        };
        let mut make = || Fleet::reference(2);
        let curves = fleet_sweep(
            &mut make,
            &[FleetDispatch::replicated(1), FleetDispatch::sharded()],
            &spec,
        )
        .unwrap();
        assert_eq!(curves.len(), 2);
        assert_eq!(curves[0].placement, "fleet-replicated(1)");
        assert_eq!(curves[1].placement, "fleet-sharded");
        assert_eq!(curves[0].saturation_qps, curves[1].saturation_qps);
        for (a, b) in curves[0].points.iter().zip(&curves[1].points) {
            assert_eq!(a.offered_qps, b.offered_qps);
        }
        assert_eq!(curves[0].nodes, 2);
    }
}
