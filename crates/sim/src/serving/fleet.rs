//! Fleet-scale serving: N RecNMP nodes behind a front-end router.
//!
//! One RecNMP node saturates at the capacity of its channels; production
//! recommendation traffic is served by a *fleet* of such nodes behind a
//! router. This module scales the single-node serving model up one
//! level:
//!
//! * a [`Fleet`] owns N node backends (each a multi-channel cluster or a
//!   tiered DRAM+SSD system — anything implementing
//!   [`SlsBackend`](recnmp_backend::SlsBackend));
//! * a [`FleetPlacementPlan`] places tables twice — tables → nodes (with
//!   cross-node replication of the hottest tables), then tables →
//!   channels within each node;
//! * a [`RouterPolicy`] picks, per batch, which node replica serves it
//!   (stateless hash-affinity rotation, least-outstanding-lookups, or
//!   placement-aware scatter onto the node whose owning channels are
//!   least backlogged);
//! * a [`NetworkCost`] charges the inter-node hop: a query whose batches
//!   span nodes completes at its slowest node (each node pays the usual
//!   per-node [`GatherCost`]) plus a base-plus-per-byte network gather
//!   over the pooled result vectors shipped back to the router. A
//!   single-node fleet pays **no** network cost (the router is
//!   co-located), which makes a 1-node fleet numerically identical to
//!   the bare cluster under sharded serving — the invariant the
//!   `serve_sweep --fleet` smoke and `fleet_determinism` tests pin.
//!
//! Execution nests the two parallelism levels on the shared
//! deterministic worker pool: each query spawns one task per involved
//! node, and each node task fans its per-channel shards out as nested
//! tasks ([`SlsBackend::try_run_shards`]); the pool's own-batch helping
//! keeps the thread budget fixed, and results merge in (node, channel)
//! order, so fleet runs are byte-identical at any worker count.
//!
//! # Examples
//!
//! ```no_run
//! use recnmp_sim::fleet::{serve_fleet, Fleet, FleetConfig, FleetDispatch};
//! use recnmp_sim::serving::{ArrivalProcess, QueryShape};
//!
//! let mut fleet = Fleet::reference(2);
//! let cfg = FleetConfig {
//!     process: ArrivalProcess::Poisson,
//!     qps: 50_000.0,
//!     queries: 64,
//!     shape: QueryShape::new(8, 2, 8).with_table_sampling(4),
//!     dispatch: FleetDispatch::replicated(2),
//!     seed: 7,
//! };
//! let report = serve_fleet(&mut fleet, &cfg).unwrap();
//! assert_eq!(report.latencies.len(), 64);
//! ```

use recnmp_backend::{
    FleetPlacementPlan, PlacementPolicy, RunReport, SlsBackend, SlsTrace, TableUsage,
};
use recnmp_types::units::completions_to_qps;
use recnmp_types::{ByteSize, ConfigError, Cycle, SimError};
use serde::{Deserialize, Serialize};

use super::arrivals::{ArrivalProcess, QueryShape, QueryStream};
use super::policy::GatherCost;
use super::sweep::{reference_cluster4, SweepPoint, SweepSpec};

/// A factory producing fresh (cold) fleets, so every sweep point starts
/// from identical hardware state.
pub type FleetFactory<'a> = dyn FnMut() -> Fleet + 'a;

/// N node backends behind one router: the serving fleet.
///
/// Every node must expose the same
/// [`server_count`](SlsBackend::server_count) — the fleet's placement
/// plan assumes a uniform channels-per-node geometry.
pub struct Fleet {
    name: String,
    channels_per_node: usize,
    nodes: Vec<Box<dyn SlsBackend>>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("name", &self.name)
            .field("channels_per_node", &self.channels_per_node)
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl Fleet {
    /// Builds a fleet from node backends.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `nodes` is empty or the nodes
    /// disagree on server count.
    pub fn new(nodes: Vec<Box<dyn SlsBackend>>) -> Result<Self, ConfigError> {
        let Some(first) = nodes.first() else {
            return Err(ConfigError::new("fleet", "need at least one node"));
        };
        let channels_per_node = first.server_count();
        if let Some(odd) = nodes.iter().find(|n| n.server_count() != channels_per_node) {
            return Err(ConfigError::new(
                "fleet",
                format!(
                    "nodes disagree on geometry: {} exposes {} server(s), {} exposes {}",
                    first.name(),
                    channels_per_node,
                    odd.name(),
                    odd.server_count()
                ),
            ));
        }
        let name = format!("fleet[{} x {}]", nodes.len(), first.name());
        Ok(Self {
            name,
            channels_per_node,
            nodes,
        })
    }

    /// The reference fleet: `nodes` copies of the 4-channel reference
    /// serving cluster
    /// ([`reference_cluster4`](super::sweep::reference_cluster4)).
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is zero.
    pub fn reference(nodes: usize) -> Self {
        Self::new((0..nodes).map(|_| reference_cluster4()).collect()).expect("reference fleet")
    }

    /// `"fleet[N x node-name]"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Channels (dispatchable servers) per node.
    pub fn channels_per_node(&self) -> usize {
        self.channels_per_node
    }
}

/// How the front-end router picks a node replica for each batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// Stateless: a batch of table `t` in query `i` goes to node replica
    /// `i mod replicas(t)` — replicated tables rotate through their node
    /// set, unreplicated tables always hit their single home.
    HashAffinity,
    /// Size-aware join-shortest-queue at node granularity: the replica
    /// with the fewest outstanding lookups at dispatch time (ties to the
    /// lowest node index).
    LeastOutstanding,
    /// Placement-aware scatter: the replica whose *owning channels* for
    /// this table free earliest — the router peeks one level deeper than
    /// [`LeastOutstanding`](Self::LeastOutstanding) and targets channel
    /// backlog rather than node backlog.
    PlacementScatter,
}

impl RouterPolicy {
    /// Every policy, in comparison order.
    pub const ALL: [RouterPolicy; 3] = [
        RouterPolicy::HashAffinity,
        RouterPolicy::LeastOutstanding,
        RouterPolicy::PlacementScatter,
    ];

    /// A short stable label.
    pub fn name(self) -> &'static str {
        match self {
            RouterPolicy::HashAffinity => "hash-affinity",
            RouterPolicy::LeastOutstanding => "least-outstanding",
            RouterPolicy::PlacementScatter => "placement-scatter",
        }
    }
}

/// The modeled cost of shipping pooled results from the nodes back to
/// the router: `base + per_byte * result_bytes` cycles per query, where
/// `result_bytes` sums the pooled output vectors
/// ([`SlsBatch::output_bytes`](recnmp_trace::SlsBatch::output_bytes)) of
/// every batch the query scattered off-router. Charged once per query —
/// node transfers overlap on independent links, so the gather is
/// dominated by the aggregate bytes plus one base latency.
///
/// A single-node fleet pays nothing: the router is co-located with its
/// only node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkCost {
    /// Fixed per-query network latency (one rack round trip).
    pub base: Cycle,
    /// Cycles per pooled result byte shipped node → router.
    pub per_byte: Cycle,
}

impl NetworkCost {
    /// Builds a cost model.
    pub fn new(base: Cycle, per_byte: Cycle) -> Self {
        Self { base, per_byte }
    }

    /// The default intra-rack model: a fixed round-trip plus a per-byte
    /// charge an order of magnitude above the on-host
    /// [`GatherCost`](super::policy::GatherCost) — crossing the network
    /// must cost visibly more than staying on the node, or the model
    /// would never penalize scattering a query fleet-wide.
    pub fn rack_default() -> Self {
        Self::new(1_200, 1)
    }

    /// Total network cycles for one query shipping `result_bytes` back.
    pub fn cost_of(self, result_bytes: u64) -> Cycle {
        self.base + self.per_byte * result_bytes
    }
}

/// How a fleet turns queries into node work: the router, the two
/// placement levels, and the gather costs at both levels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetDispatch {
    /// Node pick per batch.
    pub router: RouterPolicy,
    /// Level-1 placement: tables → nodes.
    pub node_policy: PlacementPolicy,
    /// Level-2 placement: tables → channels within each node.
    pub within_policy: PlacementPolicy,
    /// Per-node scatter/gather merge cost (same role as in sharded
    /// single-node serving).
    pub gather: GatherCost,
    /// Inter-node result gather cost.
    pub network: NetworkCost,
    /// Optional per-channel capacity bound both placement levels pack
    /// against.
    pub channel_capacity: Option<ByteSize>,
}

impl FleetDispatch {
    /// Pure sharding: every table lives on exactly one node
    /// (frequency-balanced, no replication) — the scaling baseline.
    pub fn sharded() -> Self {
        Self {
            router: RouterPolicy::HashAffinity,
            node_policy: PlacementPolicy::FrequencyBalanced { replicate: 0 },
            within_policy: PlacementPolicy::FrequencyBalanced { replicate: 0 },
            gather: GatherCost::host_default(),
            network: NetworkCost::rack_default(),
            channel_capacity: None,
        }
    }

    /// Hot-table replication: the `hot` hottest tables are replicated
    /// onto every node (level 1) so top-load traffic has more than one
    /// home. Router and within-node placement match
    /// [`sharded`](Self::sharded), so curves isolate the replication
    /// effect.
    pub fn replicated(hot: usize) -> Self {
        Self {
            node_policy: PlacementPolicy::FrequencyBalanced { replicate: hot },
            ..Self::sharded()
        }
    }

    /// A short stable label for the node-placement flavor
    /// (`"fleet-sharded"`, `"fleet-replicated(2)"`, ...).
    pub fn label(&self) -> String {
        match self.node_policy {
            PlacementPolicy::FrequencyBalanced { replicate: 0 } => "fleet-sharded".to_string(),
            PlacementPolicy::FrequencyBalanced { replicate } => {
                format!("fleet-replicated({replicate})")
            }
            PlacementPolicy::Hash => "fleet-hash".to_string(),
            PlacementPolicy::CapacityGreedy => "fleet-capacity".to_string(),
        }
    }
}

/// One fleet serving run: an offered load, a query shape, and a fleet
/// dispatch discipline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Arrival process of the open-loop generator.
    pub process: ArrivalProcess,
    /// Offered query rate (queries per second of simulated time).
    pub qps: f64,
    /// Queries to offer.
    pub queries: usize,
    /// SLS work per query.
    pub shape: QueryShape,
    /// Router, placement and gather model.
    pub dispatch: FleetDispatch,
    /// Seed for both the arrival schedule and the query index streams.
    pub seed: u64,
}

/// The outcome of one fleet serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Fleet label the run was served by.
    pub system: String,
    /// Router the run was dispatched under.
    pub router: RouterPolicy,
    /// Offered query rate.
    pub offered_qps: f64,
    /// Arrival cycle of each query, in arrival order.
    pub arrivals: Vec<Cycle>,
    /// Completion cycle of each query, in arrival order.
    pub completions: Vec<Cycle>,
    /// Enqueue→completion latency of each query, in arrival order.
    pub latencies: Vec<Cycle>,
    /// Queries that touched each node (a query spanning k nodes counts
    /// once on each).
    pub node_queries: Vec<u64>,
    /// Tables the node-level plan replicated across nodes.
    pub replicated_tables: usize,
    /// Counters merged over every node shard, with `query_completions`
    /// carrying the per-query timestamps and `total_cycles` the
    /// makespan.
    pub report: RunReport,
}

impl FleetReport {
    /// Cycle at which the last query completed.
    pub fn makespan(&self) -> Cycle {
        self.completions.iter().copied().max().unwrap_or(0)
    }

    /// Completion throughput (queries per simulated second), windowed
    /// over first→last completion exactly like
    /// [`ServingReport::achieved_qps`](super::scheduler::ServingReport::achieved_qps).
    pub fn achieved_qps(&self) -> f64 {
        let n = self.completions.len() as u64;
        let first = self.completions.iter().copied().min().unwrap_or(0);
        let last = self.makespan();
        if n >= 2 && last > first {
            completions_to_qps(n - 1, last - first)
        } else {
            completions_to_qps(n, last)
        }
    }

    /// The latency distribution.
    pub fn summary(&self) -> super::scheduler::LatencySummary {
        super::scheduler::LatencySummary::from_latencies(&self.latencies)
    }
}

/// Serves `cfg.queries` open-loop queries on `fleet` and accounts
/// per-query latency in simulated time.
///
/// Arrival schedule and query streams derive from `cfg.seed` exactly as
/// in single-node [`serve`](super::scheduler::serve), so a 1-node fleet
/// replays the same workload as the bare cluster.
///
/// # Errors
///
/// Returns [`SimError::Stalled`] if any node's cycle-level run stalls,
/// or [`SimError::Config`] when placement cannot fit the workload's
/// tables at either level.
pub fn serve_fleet(fleet: &mut Fleet, cfg: &FleetConfig) -> Result<FleetReport, SimError> {
    let mut arrival_rng = recnmp_types::rng::DetRng::seed(cfg.seed ^ 0xa5a5_5a5a_0f0f_f0f0);
    let arrivals = cfg
        .process
        .arrival_times(cfg.qps, cfg.queries, &mut arrival_rng);
    let queries = QueryStream::new(cfg.shape, cfg.seed).take_queries(cfg.queries);
    serve_fleet_arrivals(fleet, cfg, &arrivals, &queries)
}

/// One node's scattered work: per-channel shards sorted by channel.
type Shards = Vec<(usize, SlsTrace)>;

/// The fleet scheduler core, shared by [`serve_fleet`] and the
/// saturation probe: routes each query's batches to nodes, scatters
/// within each node, simulates the touched nodes in parallel, and
/// accounts completion times.
pub(super) fn serve_fleet_arrivals(
    fleet: &mut Fleet,
    cfg: &FleetConfig,
    arrivals: &[Cycle],
    queries: &[SlsTrace],
) -> Result<FleetReport, SimError> {
    assert_eq!(arrivals.len(), queries.len(), "one arrival per query");
    let nodes = fleet.nodes.len();
    let channels = fleet.channels_per_node;
    let dispatch = cfg.dispatch;

    // Both placement levels are built once per run from the query
    // stream's table profile; every query then consults them.
    let usage = TableUsage::from_traces(queries);
    let plan = FleetPlacementPlan::build(
        nodes,
        channels,
        dispatch.channel_capacity.map(ByteSize::get),
        &usage,
        dispatch.node_policy,
        dispatch.within_policy,
    )
    .map_err(SimError::Config)?;

    // Earliest cycle each (node, channel) is free.
    let mut free_at: Vec<Vec<Cycle>> = vec![vec![0; channels]; nodes];
    // For LeastOutstanding: (completion, lookups) of work in flight per
    // node — the same size-aware bookkeeping the single-node scheduler
    // keeps per channel, lifted to node granularity.
    let mut in_flight: Vec<Vec<(Cycle, u64)>> = vec![Vec::new(); nodes];
    let mut completions = vec![0 as Cycle; queries.len()];
    let mut node_queries = vec![0u64; nodes];
    let mut merged = RunReport::for_system(fleet.name.clone());

    for (q_idx, query) in queries.iter().enumerate() {
        let dispatch_at = arrivals[q_idx];

        // Level 1: route each batch to one node replica of its table.
        let mut per_node_batches: Vec<SlsTrace> = vec![SlsTrace::default(); nodes];
        for batch in query.batches.iter().cloned() {
            let table = batch.table();
            let reps = plan.node_replicas(table);
            let node = match dispatch.router {
                RouterPolicy::HashAffinity => *reps
                    .get(q_idx % reps.len().max(1))
                    .unwrap_or_else(|| panic!("table {table} missing from fleet plan")),
                RouterPolicy::LeastOutstanding => *reps
                    .iter()
                    .min_by_key(|&&n| {
                        // Dispatch times are non-decreasing, so drained
                        // work can never count again.
                        in_flight[n].retain(|(done, _)| *done > dispatch_at);
                        let backlog: u64 = in_flight[n].iter().map(|(_, l)| l).sum();
                        (backlog, n)
                    })
                    .unwrap_or_else(|| panic!("table {table} missing from fleet plan")),
                RouterPolicy::PlacementScatter => *reps
                    .iter()
                    .min_by_key(|&&n| {
                        let earliest = plan
                            .per_node(n)
                            .replicas(table)
                            .iter()
                            .map(|&c| free_at[n][c])
                            .min()
                            .unwrap_or(Cycle::MAX);
                        (earliest, n)
                    })
                    .unwrap_or_else(|| panic!("table {table} missing from fleet plan")),
            };
            per_node_batches[node].batches.push(batch);
        }

        // Level 2: within each touched node, assign batches to the
        // least-backlogged owning channel — byte-for-byte the
        // single-node sharded scatter.
        let lookups = query.total_lookups();
        let mut scattered = 0u64;
        // (node, per-channel shards sorted by channel, result bytes).
        let mut node_jobs: Vec<(usize, Shards, u64)> = Vec::new();
        for (n, node_trace) in per_node_batches.into_iter().enumerate() {
            if node_trace.batches.is_empty() {
                continue;
            }
            node_queries[n] += 1;
            let mut by_channel: Vec<SlsTrace> = vec![SlsTrace::default(); channels];
            let mut result_bytes = 0u64;
            for batch in node_trace.batches {
                let table = batch.table();
                let replicas = plan.per_node(n).replicas(table);
                let &channel = replicas
                    .iter()
                    .min_by_key(|&&c| (free_at[n][c], c))
                    .unwrap_or_else(|| panic!("table {table} missing from node {n} plan"));
                result_bytes += batch.batch.output_bytes();
                by_channel[channel].batches.push(batch);
            }
            let shards: Shards = by_channel
                .into_iter()
                .enumerate()
                .filter(|(_, s)| !s.batches.is_empty())
                .collect();
            node_jobs.push((n, shards, result_bytes));
        }

        // Simulate every touched node as one pool task; each node fans
        // its shards out as nested tasks (try_run_shards), and reports
        // come back in submission order regardless of completion order.
        let reports: Vec<Vec<RunReport>> = {
            let mut pending = node_jobs.iter().peekable();
            let mut paired: Vec<(&mut dyn SlsBackend, &Shards)> = Vec::new();
            for (n, node) in fleet.nodes.iter_mut().enumerate() {
                if pending.peek().is_some_and(|(jn, _, _)| *jn == n) {
                    let (_, shards, _) = pending.next().unwrap();
                    paired.push((node.as_mut(), shards));
                }
            }
            let tasks: Vec<_> = paired
                .into_iter()
                .map(|(node, shards)| move || node.try_run_shards(shards))
                .collect();
            recnmp_exec::current().run_vec(tasks)?
        };

        // Queueing arithmetic, serially in (node, channel) order: each
        // shard queues on its channel, each node completes at its
        // slowest shard plus the per-node gather, and the query
        // completes at its slowest node plus the network gather (waived
        // when the router is co-located with a single node).
        let mut slowest_node = dispatch_at;
        let mut total_result_bytes = 0u64;
        for ((n, shards, result_bytes), node_reports) in node_jobs.iter().zip(reports) {
            let mut node_slowest = dispatch_at;
            let mut fanout: Cycle = 0;
            let mut node_lookups = 0u64;
            for ((channel, shard), report) in shards.iter().zip(node_reports) {
                scattered += shard.total_lookups();
                node_lookups += shard.total_lookups();
                let start = dispatch_at.max(free_at[*n][*channel]);
                let complete = start + report.total_cycles;
                free_at[*n][*channel] = complete;
                node_slowest = node_slowest.max(complete);
                fanout += 1;
                merged.absorb_parallel(report);
            }
            let node_complete =
                node_slowest + dispatch.gather.base + dispatch.gather.per_shard * fanout;
            if dispatch.router == RouterPolicy::LeastOutstanding {
                in_flight[*n].push((node_complete, node_lookups));
            }
            slowest_node = slowest_node.max(node_complete);
            total_result_bytes += result_bytes;
        }
        debug_assert_eq!(scattered, lookups, "fleet scatter must conserve lookups");

        completions[q_idx] = if nodes > 1 {
            slowest_node + dispatch.network.cost_of(total_result_bytes)
        } else {
            slowest_node
        };
    }

    let latencies: Vec<Cycle> = completions
        .iter()
        .zip(arrivals)
        .map(|(&done, &arr)| done - arr)
        .collect();
    merged.total_cycles = completions.iter().copied().max().unwrap_or(0);
    merged.query_completions = completions.clone();

    Ok(FleetReport {
        system: fleet.name.clone(),
        router: dispatch.router,
        offered_qps: cfg.qps,
        arrivals: arrivals.to_vec(),
        completions,
        latencies,
        node_queries,
        replicated_tables: plan.replicated_tables(),
        report: merged,
    })
}

/// One fleet throughput–latency curve.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCurve {
    /// Fleet label.
    pub system: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Dispatch label (`"fleet-sharded"`, `"fleet-replicated(2)"`, ...).
    pub placement: String,
    /// Router label.
    pub router: &'static str,
    /// Reference saturation throughput the utilization fractions anchor
    /// to.
    pub saturation_qps: f64,
    /// Measured points, in ascending offered-QPS order.
    pub points: Vec<SweepPoint>,
}

impl FleetCurve {
    /// The saturation knee: the highest offered load the fleet still
    /// sustained (achieved ≥ 90% of offered). `None` when even the
    /// lightest point was unsustainable.
    pub fn knee(&self) -> Option<&SweepPoint> {
        self.points.iter().rev().find(|p| p.sustained())
    }
}

/// Probes the back-to-back service capacity of a fresh fleet under
/// `dispatch`: all `queries` queries arrive at cycle 0 and the
/// completion throughput of the resulting busy period is the saturation
/// rate.
///
/// # Errors
///
/// Returns [`SimError::Stalled`] if a cycle-level run stalls, or
/// [`SimError::Config`] when placement fails.
pub fn fleet_saturation(
    make_fleet: &mut FleetFactory<'_>,
    dispatch: FleetDispatch,
    shape: QueryShape,
    queries: usize,
    seed: u64,
) -> Result<f64, SimError> {
    let mut fleet = make_fleet();
    let cfg = FleetConfig {
        process: ArrivalProcess::Uniform,
        qps: 1.0, // unused: arrivals are pinned to cycle 0 below
        queries,
        shape,
        dispatch,
        seed,
    };
    let arrivals = vec![0; queries];
    let trace_queries = QueryStream::new(shape, seed).take_queries(queries);
    let report = serve_fleet_arrivals(&mut fleet, &cfg, &arrivals, &trace_queries)?;
    Ok(report.achieved_qps())
}

/// Measures one fleet throughput–latency curve at explicit offered
/// loads, anchored to a caller-provided `saturation` rate.
///
/// Load points are independent simulations over fresh fleets, each one
/// task on the deterministic worker pool; a point's fleet then nests
/// its own node and channel tasks into the same pool, so the whole
/// sweep runs under one fixed thread budget and the curve is
/// byte-identical to a serial sweep at any worker count.
///
/// # Errors
///
/// Returns [`SimError::Stalled`] if any cycle-level run stalls, or
/// [`SimError::Config`] when placement fails.
#[allow(clippy::too_many_arguments)]
pub fn fleet_sweep_at(
    make_fleet: &mut FleetFactory<'_>,
    dispatch: FleetDispatch,
    process: ArrivalProcess,
    shape: QueryShape,
    saturation: f64,
    offered: &[f64],
    queries: usize,
    seed: u64,
) -> Result<FleetCurve, SimError> {
    let mut jobs: Vec<(Fleet, FleetConfig)> = offered
        .iter()
        .map(|&qps| {
            assert!(qps > 0.0, "offered loads must be positive");
            let cfg = FleetConfig {
                process,
                qps,
                queries,
                shape,
                dispatch,
                seed,
            };
            (make_fleet(), cfg)
        })
        .collect();
    let tasks: Vec<_> = jobs
        .iter_mut()
        .map(|(fleet, cfg)| move || serve_fleet(fleet, cfg))
        .collect();
    let reports = recnmp_exec::current().run_vec(tasks)?;
    let mut points = Vec::with_capacity(offered.len());
    let mut system = String::new();
    let mut nodes = 0;
    for (&qps, report) in offered.iter().zip(reports) {
        system = report.system.clone();
        nodes = report.node_queries.len();
        points.push(SweepPoint {
            offered_qps: qps,
            utilization: qps / saturation,
            achieved_qps: report.achieved_qps(),
            summary: report.summary(),
        });
    }
    Ok(FleetCurve {
        system,
        nodes,
        placement: dispatch.label(),
        router: dispatch.router.name(),
        saturation_qps: saturation,
        points,
    })
}

/// Sweeps one fleet under every dispatch in `dispatches`, all at the
/// same absolute offered loads: fractions of the **first** dispatch's
/// saturation rate. Callers put the informed configuration (hot-table
/// replication) first so its knee lands inside the sweep by
/// construction and every alternative is measured at the same operating
/// points — the same anchoring convention as
/// [`tiered_sweep`](super::sweep::tiered_sweep).
///
/// # Errors
///
/// Returns the first failing sweep's error.
pub fn fleet_sweep(
    make_fleet: &mut FleetFactory<'_>,
    dispatches: &[FleetDispatch],
    spec: &SweepSpec,
) -> Result<Vec<FleetCurve>, SimError> {
    let anchor = dispatches.first().expect("at least one dispatch");
    let saturation = fleet_saturation(
        make_fleet,
        *anchor,
        spec.shape,
        spec.probe_queries,
        spec.seed,
    )?;
    let offered: Vec<f64> = spec.utilizations.iter().map(|&u| u * saturation).collect();
    dispatches
        .iter()
        .map(|&dispatch| {
            fleet_sweep_at(
                make_fleet,
                dispatch,
                spec.process,
                spec.shape,
                saturation,
                &offered,
                spec.queries,
                spec.seed,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::policy::{ServingMode, ShardedDispatch};
    use crate::serving::scheduler::serve;
    use crate::serving::ServingConfig;

    fn quick_shape() -> QueryShape {
        QueryShape::new(8, 2, 6)
            .with_table_skew(1.0)
            .with_table_sampling(3)
    }

    fn quick_cfg(nodes_hint: f64, queries: usize, dispatch: FleetDispatch) -> FleetConfig {
        FleetConfig {
            process: ArrivalProcess::Poisson,
            qps: 40_000.0 * nodes_hint,
            queries,
            shape: quick_shape(),
            dispatch,
            seed: 23,
        }
    }

    #[test]
    fn fleet_rejects_degenerate_geometry() {
        assert!(Fleet::new(vec![]).is_err());
        let mixed: Vec<Box<dyn SlsBackend>> = vec![
            reference_cluster4(),
            Box::new(recnmp_baselines::HostBaseline::new(1, 2).unwrap()),
        ];
        assert!(Fleet::new(mixed).is_err());
        let fleet = Fleet::reference(2);
        assert_eq!(fleet.nodes(), 2);
        assert_eq!(fleet.channels_per_node(), 4);
        assert_eq!(fleet.name(), "fleet[2 x recnmp-cluster[4]]");
    }

    #[test]
    fn fleet_serving_conserves_lookups_across_nodes() {
        let cfg = quick_cfg(2.0, 10, FleetDispatch::replicated(1));
        let mut fleet = Fleet::reference(2);
        let report = serve_fleet(&mut fleet, &cfg).unwrap();
        let expected: u64 = QueryStream::new(cfg.shape, cfg.seed)
            .take_queries(cfg.queries)
            .iter()
            .map(SlsTrace::total_lookups)
            .sum();
        assert_eq!(report.report.insts, expected);
        assert_eq!(report.latencies.len(), 10);
        // Replication spread at least one table fleet-wide and both
        // nodes served traffic.
        assert!(report.replicated_tables >= 1);
        assert!(report.node_queries.iter().all(|&q| q > 0));
    }

    #[test]
    fn single_node_fleet_matches_bare_cluster() {
        // The keystone invariant: a 1-node fleet is numerically the bare
        // cluster under sharded serving — same arrivals, same placement,
        // same channel queues, no network charge.
        let dispatch = FleetDispatch::sharded();
        let fleet_cfg = quick_cfg(1.0, 12, dispatch);
        let mut fleet = Fleet::reference(1);
        let fleet_report = serve_fleet(&mut fleet, &fleet_cfg).unwrap();

        let mut cluster = reference_cluster4();
        let cluster_cfg = ServingConfig {
            process: fleet_cfg.process,
            qps: fleet_cfg.qps,
            queries: fleet_cfg.queries,
            shape: fleet_cfg.shape,
            mode: ServingMode::Sharded(ShardedDispatch {
                placement: dispatch.within_policy,
                gather: dispatch.gather,
                channel_capacity: dispatch.channel_capacity,
                host_cache: None,
                prefetch: None,
            }),
            coalescing: None,
            seed: fleet_cfg.seed,
        };
        let cluster_report = serve(cluster.as_mut(), &cluster_cfg).unwrap();

        assert_eq!(fleet_report.arrivals, cluster_report.arrivals);
        assert_eq!(fleet_report.completions, cluster_report.completions);
        assert_eq!(fleet_report.latencies, cluster_report.latencies);
        assert_eq!(fleet_report.report.insts, cluster_report.report.insts);
        assert_eq!(
            fleet_report.report.total_cycles,
            cluster_report.report.total_cycles
        );
    }

    #[test]
    fn every_router_serves_and_conserves() {
        for router in RouterPolicy::ALL {
            let dispatch = FleetDispatch {
                router,
                ..FleetDispatch::replicated(1)
            };
            let cfg = quick_cfg(2.0, 8, dispatch);
            let mut fleet = Fleet::reference(2);
            let report = serve_fleet(&mut fleet, &cfg).unwrap();
            let expected: u64 = QueryStream::new(cfg.shape, cfg.seed)
                .take_queries(cfg.queries)
                .iter()
                .map(SlsTrace::total_lookups)
                .sum();
            assert_eq!(report.report.insts, expected, "router {}", router.name());
            assert_eq!(report.router, router);
        }
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let cfg = quick_cfg(2.0, 8, FleetDispatch::replicated(1));
        let mut a = Fleet::reference(2);
        let mut b = Fleet::reference(2);
        assert_eq!(
            serve_fleet(&mut a, &cfg).unwrap(),
            serve_fleet(&mut b, &cfg).unwrap()
        );
    }

    #[test]
    fn multi_node_queries_pay_the_network_gather() {
        // Same workload, same per-node arithmetic: a 2-node fleet with
        // zero network cost must strictly undercut one with the rack
        // default on every completion that left the router's rack slot.
        let mut free = quick_cfg(2.0, 8, FleetDispatch::sharded());
        free.dispatch.network = NetworkCost::new(0, 0);
        let charged = quick_cfg(2.0, 8, FleetDispatch::sharded());
        let mut a = Fleet::reference(2);
        let mut b = Fleet::reference(2);
        let r_free = serve_fleet(&mut a, &free).unwrap();
        let r_charged = serve_fleet(&mut b, &charged).unwrap();
        for (f, c) in r_free.latencies.iter().zip(&r_charged.latencies) {
            assert!(f + charged.dispatch.network.base <= *c + 1);
            assert!(f < c);
        }
    }

    #[test]
    fn fleet_sweep_anchors_every_dispatch_to_the_first() {
        let spec = SweepSpec {
            process: ArrivalProcess::Uniform,
            shape: quick_shape(),
            utilizations: vec![0.5, 1.2],
            queries: 6,
            probe_queries: 6,
            seed: 23,
        };
        let mut make = || Fleet::reference(2);
        let curves = fleet_sweep(
            &mut make,
            &[FleetDispatch::replicated(1), FleetDispatch::sharded()],
            &spec,
        )
        .unwrap();
        assert_eq!(curves.len(), 2);
        assert_eq!(curves[0].placement, "fleet-replicated(1)");
        assert_eq!(curves[1].placement, "fleet-sharded");
        assert_eq!(curves[0].saturation_qps, curves[1].saturation_qps);
        for (a, b) in curves[0].points.iter().zip(&curves[1].points) {
            assert_eq!(a.offered_qps, b.offered_qps);
        }
        assert_eq!(curves[0].nodes, 2);
    }
}
