//! The query scheduler: turns a backend into an open-loop queueing system
//! and accounts per-query enqueue→completion latency in simulated time.
//!
//! Two serving models share the scheduler core
//! ([`ServingMode`]):
//!
//! * **Queued** — each job runs whole on one server picked by a
//!   [`DispatchPolicy`](super::policy::DispatchPolicy);
//! * **Sharded** — a [`PlacementPlan`] is built from the query stream's
//!   table profile, each job *scatters* into one sub-trace per channel
//!   owning its tables, the shards queue independently on their
//!   channels, and the query completes at the slowest shard plus a host
//!   [`GatherCost`](super::policy::GatherCost) merge.

use recnmp_backend::{
    PlacementPlan, RunReport, SlsBackend, SlsTrace, TableUsage, TieredPlacementPlan,
};
use recnmp_types::units::{completions_to_qps, cycles_to_us};
use recnmp_types::{ByteSize, ConfigError, Cycle, SimError, TableId};
use serde::{Deserialize, Serialize};

use super::arrivals::{ArrivalProcess, QueryShape, QueryStream};
use super::host_cache::{HostCache, HotVectorTracker};
use super::policy::{
    Coalescing, DispatchPolicy, GatherCost, ServingMode, ShardedDispatch, TieredDispatch,
};

/// One serving run: an offered load, a query shape, and a scheduling
/// discipline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Arrival process of the open-loop generator.
    pub process: ArrivalProcess,
    /// Offered query rate (queries per second of simulated time).
    pub qps: f64,
    /// Queries to offer.
    pub queries: usize,
    /// SLS work per query.
    pub shape: QueryShape,
    /// How jobs become backend work: queued whole-query dispatch or
    /// sharded scatter/gather.
    pub mode: ServingMode,
    /// Optional batch coalescing ahead of dispatch.
    pub coalescing: Option<Coalescing>,
    /// Optional bound on queries in flight (dispatched, not yet
    /// complete). A job arriving while the bound is met is *rejected* —
    /// counted in [`ServingReport::rejected`] and
    /// `RunReport::queries_rejected` — instead of growing the queue
    /// without limit through a long overload sweep. `None` keeps the
    /// historical unbounded queue.
    pub max_queue_depth: Option<usize>,
    /// Seed for both the arrival schedule and the query index streams.
    pub seed: u64,
}

impl ServingConfig {
    /// A Poisson FIFO configuration with no coalescing — the baseline
    /// serving discipline.
    pub fn poisson(qps: f64, queries: usize, shape: QueryShape, seed: u64) -> Self {
        Self {
            process: ArrivalProcess::Poisson,
            qps,
            queries,
            shape,
            mode: ServingMode::Queued(DispatchPolicy::FifoSingleQueue),
            coalescing: None,
            max_queue_depth: None,
            seed,
        }
    }
}

/// Latency distribution of one serving run, in simulator cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median latency.
    pub p50: Cycle,
    /// 95th-percentile latency.
    pub p95: Cycle,
    /// 99th-percentile latency.
    pub p99: Cycle,
    /// Mean latency.
    pub mean: f64,
    /// Worst-case latency.
    pub max: Cycle,
}

impl LatencySummary {
    /// Summarizes `latencies` (need not be sorted). Zeroed for an empty
    /// slice.
    pub fn from_latencies(latencies: &[Cycle]) -> Self {
        if latencies.is_empty() {
            return Self {
                p50: 0,
                p95: 0,
                p99: 0,
                mean: 0.0,
                max: 0,
            };
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        Self {
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
            mean: sorted.iter().sum::<Cycle>() as f64 / sorted.len() as f64,
            max: *sorted.last().unwrap(),
        }
    }

    /// The (p50, p95, p99) triple in microseconds.
    pub fn percentiles_us(&self) -> (f64, f64, f64) {
        (
            cycles_to_us(self.p50),
            cycles_to_us(self.p95),
            cycles_to_us(self.p99),
        )
    }
}

/// Nearest-rank percentile of an ascending-sorted non-empty slice.
fn percentile(sorted: &[Cycle], q: f64) -> Cycle {
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The outcome of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Backend label the run was served by.
    pub system: String,
    /// Serving mode the run was scheduled under.
    pub mode: ServingMode,
    /// Offered query rate.
    pub offered_qps: f64,
    /// Arrival cycle of each query, in arrival order.
    pub arrivals: Vec<Cycle>,
    /// Completion cycle of each query, in arrival order.
    pub completions: Vec<Cycle>,
    /// Enqueue→completion latency of each query, in arrival order.
    pub latencies: Vec<Cycle>,
    /// Backend runs dispatched (equals query count without coalescing).
    pub jobs: usize,
    /// Arrival-order indices of queries rejected at the
    /// [`max_queue_depth`](ServingConfig::max_queue_depth) bound,
    /// ascending. Their `completions` entries equal their dispatch cycle
    /// and they are excluded from the summary and throughput window.
    pub rejected: Vec<usize>,
    /// Counters merged over every dispatched job, with
    /// `query_completions` carrying the per-query timestamps and
    /// `total_cycles` the makespan.
    pub report: RunReport,
}

impl ServingReport {
    /// Cycle at which the last query completed.
    pub fn makespan(&self) -> Cycle {
        self.completions.iter().copied().max().unwrap_or(0)
    }

    /// Per-query values with the rejected queries dropped (`rejected` is
    /// ascending, so one forward merge suffices).
    fn served(&self, values: &[Cycle]) -> Vec<Cycle> {
        if self.rejected.is_empty() {
            return values.to_vec();
        }
        let mut rej = self.rejected.iter().peekable();
        values
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                if rej.peek() == Some(&i) {
                    rej.next();
                    false
                } else {
                    true
                }
            })
            .map(|(_, &v)| v)
            .collect()
    }

    /// Completion throughput (queries per simulated second) over the
    /// served (non-rejected) queries, measured over the completion
    /// window (first to last completion) so the initial ramp and final
    /// drain don't bias short runs. Falls back to the full makespan when
    /// the window is degenerate (fewer than two distinct completion
    /// times).
    pub fn achieved_qps(&self) -> f64 {
        let done = self.served(&self.completions);
        let n = done.len() as u64;
        let first = done.iter().copied().min().unwrap_or(0);
        let last = done.iter().copied().max().unwrap_or(0);
        if n >= 2 && last > first {
            completions_to_qps(n - 1, last - first)
        } else {
            completions_to_qps(n, last)
        }
    }

    /// The latency distribution over served (non-rejected) queries.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary::from_latencies(&self.served(&self.latencies))
    }
}

/// The admission guard behind
/// [`max_queue_depth`](ServingConfig::max_queue_depth): tracks the
/// completion times of admitted jobs and refuses a dispatch when the
/// bound is already in flight. Unbounded (`None`) admits everything and
/// tracks nothing.
struct DepthGuard {
    bound: Option<usize>,
    outstanding: Vec<Cycle>,
}

impl DepthGuard {
    fn new(bound: Option<usize>) -> Self {
        Self {
            bound,
            outstanding: Vec::new(),
        }
    }

    /// May a job dispatching at `dispatch` enter the system? Dispatch
    /// times are non-decreasing, so drained work is dropped before the
    /// count.
    fn admits(&mut self, dispatch: Cycle) -> bool {
        let Some(bound) = self.bound else { return true };
        self.outstanding.retain(|&done| done > dispatch);
        self.outstanding.len() < bound
    }

    /// Records an admitted job's completion.
    fn admit(&mut self, complete: Cycle) {
        if self.bound.is_some() {
            self.outstanding.push(complete);
        }
    }

    /// Rejects every member of `job`: completion pinned at the dispatch
    /// cycle, indices recorded, counter bumped.
    fn reject(
        &self,
        job: &Job,
        completions: &mut [Cycle],
        rejected: &mut Vec<usize>,
        merged: &mut RunReport,
    ) {
        for &q in &job.members {
            completions[q] = job.dispatch;
            rejected.push(q);
        }
        merged.queries_rejected += job.members.len() as u64;
    }
}

/// Serves `cfg.queries` open-loop queries on `backend` and accounts
/// per-query latency in simulated time.
///
/// The queueing model: the backend exposes
/// [`server_count`](SlsBackend::server_count) independent servers
/// (cluster channels); each dispatched job (in sharded mode, each of its
/// shards) occupies one server for the `total_cycles` its cycle-level run
/// reports, and work placed on a busy server waits for it to free.
/// Hardware state (row buffers, caches) persists across jobs on each
/// server, as it would under sustained traffic; idle gaps between jobs
/// are not separately simulated.
///
/// # Errors
///
/// Returns [`SimError::Stalled`] if any job's cycle-level run stalls, or
/// [`SimError::Config`] when sharded mode cannot place the workload's
/// tables (capacity overflow).
pub fn serve(backend: &mut dyn SlsBackend, cfg: &ServingConfig) -> Result<ServingReport, SimError> {
    let mut arrival_rng = recnmp_types::rng::DetRng::seed(cfg.seed ^ 0xa5a5_5a5a_0f0f_f0f0);
    let arrivals = cfg
        .process
        .arrival_times(cfg.qps, cfg.queries, &mut arrival_rng);
    let queries = QueryStream::new(cfg.shape, cfg.seed).take_queries(cfg.queries);
    serve_arrivals(backend, cfg, &arrivals, &queries)
}

/// One dispatched unit of work: the queries it carries and the cycle the
/// scheduler released it.
struct Job {
    dispatch: Cycle,
    members: Vec<usize>,
}

/// The scheduler core, shared by [`serve`] and the saturation probe:
/// coalesces `queries` (arrival `arrivals[i]` each) into jobs, places
/// them under `cfg.mode`, and accounts completion times.
pub(super) fn serve_arrivals(
    backend: &mut dyn SlsBackend,
    cfg: &ServingConfig,
    arrivals: &[Cycle],
    queries: &[SlsTrace],
) -> Result<ServingReport, SimError> {
    assert_eq!(arrivals.len(), queries.len(), "one arrival per query");
    let servers = backend.server_count();
    assert!(servers > 0, "backend exposes no servers");

    let jobs = coalesce(arrivals, cfg.coalescing);

    // Earliest cycle each server is free.
    let mut free_at = vec![0 as Cycle; servers];
    let mut completions = vec![0 as Cycle; queries.len()];
    let mut merged = RunReport::for_system(backend.name().to_string());
    let mut guard = DepthGuard::new(cfg.max_queue_depth);
    let mut rejected: Vec<usize> = Vec::new();

    match cfg.mode {
        ServingMode::Queued(policy) => {
            // For LeastOutstanding: the completion/lookup pairs of work
            // still in flight per server.
            let mut in_flight: Vec<Vec<(Cycle, u64)>> = vec![Vec::new(); servers];
            for (job_idx, job) in jobs.iter().enumerate() {
                if !guard.admits(job.dispatch) {
                    guard.reject(job, &mut completions, &mut rejected, &mut merged);
                    continue;
                }
                let server = match policy {
                    DispatchPolicy::FifoSingleQueue => {
                        // Central queue: the job runs on whichever server
                        // frees first (ties to the lowest index).
                        (0..servers).min_by_key(|&s| (free_at[s], s)).unwrap()
                    }
                    DispatchPolicy::RoundRobin => job_idx % servers,
                    DispatchPolicy::LeastOutstanding => {
                        // Size-aware join-shortest-queue: least
                        // outstanding lookups at dispatch time. Dispatch
                        // times are non-decreasing, so work completed by
                        // now can never count again and is dropped
                        // before the scan.
                        (0..servers)
                            .min_by_key(|&s| {
                                in_flight[s].retain(|(done, _)| *done > job.dispatch);
                                let backlog: u64 =
                                    in_flight[s].iter().map(|(_, lookups)| lookups).sum();
                                (backlog, s)
                            })
                            .unwrap()
                    }
                };

                let trace = merge_queries(queries, &job.members);
                let report = backend.try_run_on(server, &trace)?;
                let start = job.dispatch.max(free_at[server]);
                let complete = start + report.total_cycles;
                free_at[server] = complete;
                if policy == DispatchPolicy::LeastOutstanding {
                    in_flight[server].push((complete, trace.total_lookups()));
                }
                for &q in &job.members {
                    completions[q] = complete;
                }
                guard.admit(complete);
                merged.absorb_parallel(report);
            }
        }
        ServingMode::Sharded(sharded) => {
            serve_sharded(
                backend,
                sharded,
                &jobs,
                queries,
                &mut free_at,
                &mut completions,
                &mut merged,
                &mut guard,
                &mut rejected,
            )?;
        }
        ServingMode::Tiered(tiered) => {
            serve_tiered(
                backend,
                tiered,
                &jobs,
                queries,
                &mut free_at,
                &mut completions,
                &mut merged,
                &mut guard,
                &mut rejected,
            )?;
        }
    }

    let latencies: Vec<Cycle> = completions
        .iter()
        .zip(arrivals)
        .map(|(&done, &arr)| done - arr)
        .collect();
    // The merged counters cover serial jobs, so wall-clock is the
    // makespan, not the per-job max `absorb_parallel` keeps.
    merged.total_cycles = completions.iter().copied().max().unwrap_or(0);
    merged.query_completions = completions.clone();

    Ok(ServingReport {
        system: backend.name().to_string(),
        mode: cfg.mode,
        offered_qps: cfg.qps,
        arrivals: arrivals.to_vec(),
        completions,
        latencies,
        jobs: jobs.len(),
        rejected,
        report: merged,
    })
}

/// Serves every job under sharded scatter/gather, with the optional
/// cache-aware extensions:
///
/// * **Host cache** ([`HostCacheSpec`](super::policy::HostCacheSpec)) —
///   each job's trace filters through a host-side hot-embedding cache
///   first; absorbed lookups leave the dispatched work and instead charge
///   `hit_cycles` each onto the query's completion. The placement plan is
///   then built from the *residual* load: a dry run replays the job
///   sequence through the cache to learn the expected per-table
///   absorption, [`PlacementPlan::build_with_absorption`] balances what
///   actually reaches the channels, and the cache returns to cold before
///   the measured pass (cache/placement co-design).
/// * **Prefetch** ([`PrefetchSpec`](super::policy::PrefetchSpec)) — the
///   dispatched traffic feeds a [`HotVectorTracker`]; before each job,
///   every channel idle until the dispatch cycle spends its gap staging
///   the hottest tracked vectors into its RankCaches via
///   [`SlsBackend::prefetch_on`] (low-priority: the gap bounds the
///   traffic, so prefetch never delays demand work).
#[allow(clippy::too_many_arguments)]
fn serve_sharded(
    backend: &mut dyn SlsBackend,
    sharded: ShardedDispatch,
    jobs: &[Job],
    queries: &[SlsTrace],
    free_at: &mut [Cycle],
    completions: &mut [Cycle],
    merged: &mut RunReport,
    guard: &mut DepthGuard,
    rejected: &mut Vec<usize>,
) -> Result<(), SimError> {
    let usage = TableUsage::from_traces(queries);
    let capacity = sharded.channel_capacity.map(ByteSize::get);
    let mut host_cache = match sharded.host_cache {
        Some(spec) => Some(
            HostCache::build(spec, &usage, max_vector_bytes(queries)).map_err(SimError::Config)?,
        ),
        None => None,
    };

    // The placement plan is built once per run from the query stream's
    // table profile — from the residual (post-cache) profile when a host
    // cache fronts dispatch; every job then consults it.
    let plan = if let Some(hc) = host_cache.as_mut() {
        for job in jobs {
            let _ = hc.filter(merge_queries(queries, &job.members));
        }
        let absorbed = hc.absorbed_profile();
        hc.reset();
        PlacementPlan::build_with_absorption(
            servers_of(free_at),
            capacity,
            &usage,
            &absorbed,
            sharded.placement,
        )
    } else {
        PlacementPlan::build(servers_of(free_at), capacity, &usage, sharded.placement)
    }
    .map_err(SimError::Config)?;

    let mut tracker = sharded
        .prefetch
        .map(|spec| HotVectorTracker::new(spec.candidates));
    let mut offered: u64 = queries.iter().map(SlsTrace::total_lookups).sum();

    for job in jobs {
        // A rejected job never dispatches: it must not warm the host
        // cache, feed the prefetch tracker, or touch a channel.
        if !guard.admits(job.dispatch) {
            guard.reject(job, completions, rejected, merged);
            offered -= job
                .members
                .iter()
                .map(|&q| queries[q].total_lookups())
                .sum::<u64>();
            continue;
        }
        if let Some(tr) = &tracker {
            prefetch_idle(backend, &plan, tr, job.dispatch, free_at, merged);
        }
        let (trace, host_cycles) = match host_cache.as_mut() {
            Some(hc) => {
                let (residual, job_hits) = hc.filter(merge_queries(queries, &job.members));
                (residual, job_hits * hc.hit_cycles())
            }
            None => (merge_queries(queries, &job.members), 0),
        };
        if let Some(tr) = tracker.as_mut() {
            tr.observe(&trace);
        }
        let complete = serve_scattered(
            backend,
            &plan,
            sharded.gather,
            job,
            trace,
            host_cycles,
            free_at,
            completions,
            merged,
        )?;
        guard.admit(complete);
    }

    if let Some(hc) = &host_cache {
        let (hits, misses, absorbed_bytes) = hc.stats();
        debug_assert_eq!(hits + misses, offered, "host cache conserves lookups");
        merged.host_hits += hits;
        merged.host_misses += misses;
        merged.host_absorbed_bytes += absorbed_bytes;
    }
    Ok(())
}

/// The server count, read back from the per-server state it sized.
fn servers_of(free_at: &[Cycle]) -> usize {
    free_at.len()
}

/// The largest vector size across the stream — the host cache's line
/// size, so any table's vector fits one line.
fn max_vector_bytes(queries: &[SlsTrace]) -> u64 {
    queries
        .iter()
        .flat_map(|q| &q.batches)
        .map(|b| b.batch.spec.vector_bytes)
        .max()
        .unwrap_or(64)
}

/// Spends each idle channel's gap before `dispatch` staging the hottest
/// tracked vectors into its RankCaches. Candidates route to every
/// channel holding a replica of their table (the scatter picks replicas
/// by backlog at dispatch time, so any replica may serve them).
fn prefetch_idle(
    backend: &mut dyn SlsBackend,
    plan: &PlacementPlan,
    tracker: &HotVectorTracker,
    dispatch: Cycle,
    free_at: &[Cycle],
    merged: &mut RunReport,
) {
    let hot = tracker.hottest();
    if hot.is_empty() {
        return;
    }
    let mut per_channel: Vec<Vec<recnmp_types::PhysAddr>> = vec![Vec::new(); free_at.len()];
    let mut vbytes = vec![0u32; free_at.len()];
    for (addr, table, vb) in hot {
        for &c in plan.replicas(table) {
            per_channel[c].push(recnmp_types::PhysAddr::new(addr));
            vbytes[c] = vbytes[c].max(vb);
        }
    }
    for (c, addrs) in per_channel.iter().enumerate() {
        let gap = dispatch.saturating_sub(free_at[c]);
        if addrs.is_empty() || gap == 0 {
            continue;
        }
        merged.prefetch_fills += backend.prefetch_on(c, addrs, vbytes[c], gap);
    }
}

/// Scatters one job across the channels owning its tables and gathers:
/// each batch lands on the replica of its table with the least backlog
/// (deterministic, ties to the lowest channel), each non-empty shard
/// queues on its channel, and every member query completes at the
/// slowest shard plus the host merge cost plus `host_cycles` (the
/// host-cache charge for this job's absorbed lookups). Returns the
/// job's completion cycle.
#[allow(clippy::too_many_arguments)]
fn serve_scattered(
    backend: &mut dyn SlsBackend,
    plan: &PlacementPlan,
    gather: GatherCost,
    job: &Job,
    trace: SlsTrace,
    host_cycles: Cycle,
    free_at: &mut [Cycle],
    completions: &mut [Cycle],
    merged: &mut RunReport,
) -> Result<Cycle, SimError> {
    let lookups = trace.total_lookups();
    let mut shards: Vec<SlsTrace> = vec![SlsTrace::default(); free_at.len()];
    for batch in trace.batches {
        let table = batch.table();
        let replicas = plan.replicas(table);
        let &channel = replicas
            .iter()
            .min_by_key(|&&c| (free_at[c], c))
            .unwrap_or_else(|| panic!("table {table} missing from placement plan"));
        shards[channel].batches.push(batch);
    }

    let mut slowest = job.dispatch;
    let mut fanout: Cycle = 0;
    let mut scattered = 0u64;
    for (channel, shard) in shards.iter().enumerate() {
        if shard.batches.is_empty() {
            continue;
        }
        scattered += shard.total_lookups();
        let report = backend.try_run_on(channel, shard)?;
        let start = job.dispatch.max(free_at[channel]);
        let complete = start + report.total_cycles;
        free_at[channel] = complete;
        slowest = slowest.max(complete);
        fanout += 1;
        merged.absorb_parallel(report);
    }
    debug_assert_eq!(scattered, lookups, "scatter must conserve lookups");

    let complete = slowest + gather.base + gather.per_shard * fanout + host_cycles;
    for &q in &job.members {
        completions[q] = complete;
    }
    Ok(complete)
}

/// Serves every job tier-aware: a [`TieredPlacementPlan`] assigns tables
/// to DRAM channels and SSD units of the combined server space, each job
/// scatters through the plan's flat placement exactly like sharded mode,
/// and a query spanning tiers completes at its slowest tier plus the
/// host gather cost.
///
/// Without promotion epochs the plan is built once from the stream's
/// full table profile. With [`EpochPromotion`](super::policy::EpochPromotion)
/// configured, the scheduler instead starts from a *cold* plan (every
/// table weighted equally — the profile is unknown at t=0), accumulates
/// observed per-table lookups, and calls
/// [`TieredPlacementPlan::epoch_rebalance`] at every epoch boundary; the
/// units on either end of a migration (a moved table's old and new
/// replicas) stall by the modeled migration cost before serving resumes.
#[allow(clippy::too_many_arguments)]
fn serve_tiered(
    backend: &mut dyn SlsBackend,
    tiered: TieredDispatch,
    jobs: &[Job],
    queries: &[SlsTrace],
    free_at: &mut [Cycle],
    completions: &mut [Cycle],
    merged: &mut RunReport,
    guard: &mut DepthGuard,
    rejected: &mut Vec<usize>,
) -> Result<(), SimError> {
    if tiered.tiers.units() != free_at.len() {
        return Err(SimError::Config(ConfigError::new(
            "tiers",
            format!(
                "spec describes {} unit(s) but the backend exposes {} server(s)",
                tiered.tiers.units(),
                free_at.len()
            ),
        )));
    }
    let usage = TableUsage::from_traces(queries);

    let Some(epochs) = tiered.promotion else {
        let plan = TieredPlacementPlan::build(tiered.tiers, &usage, tiered.policy)
            .map_err(SimError::Config)?;
        for job in jobs {
            if !guard.admits(job.dispatch) {
                guard.reject(job, completions, rejected, merged);
                continue;
            }
            let complete = serve_scattered(
                backend,
                plan.flat(),
                tiered.gather,
                job,
                merge_queries(queries, &job.members),
                0,
                free_at,
                completions,
                merged,
            )?;
            guard.admit(complete);
        }
        return Ok(());
    };

    // Cold start: the scheduler has not seen traffic yet, so every table
    // weighs the same and the initial tier split is profile-blind.
    let cold: Vec<TableUsage> = usage
        .iter()
        .map(|u| TableUsage::new(u.table, u.bytes, 1))
        .collect();
    let mut plan =
        TieredPlacementPlan::build(tiered.tiers, &cold, tiered.policy).map_err(SimError::Config)?;
    let mut observed: std::collections::BTreeMap<TableId, u64> = std::collections::BTreeMap::new();
    for (i, job) in jobs.iter().enumerate() {
        if i > 0 && epochs.epoch_queries > 0 && i % epochs.epoch_queries == 0 {
            let obs: Vec<TableUsage> = usage
                .iter()
                .map(|u| {
                    TableUsage::new(
                        u.table,
                        u.bytes,
                        observed.get(&u.table).copied().unwrap_or(0),
                    )
                })
                .collect();
            let (next, mig) = plan
                .epoch_rebalance(&obs, epochs.policy)
                .map_err(SimError::Config)?;
            if mig.stall_cycles > 0 {
                // Both ends of each migration are busy copying: a moved
                // table's old replicas stream it out, its new replicas
                // stream it in. Unaffected units keep serving.
                let mut stalled = vec![false; free_at.len()];
                for &t in mig.promoted.iter().chain(&mig.demoted) {
                    for p in [&plan, &next] {
                        for &u in p.flat().replicas(t) {
                            stalled[u] = true;
                        }
                    }
                }
                for (u, hit) in stalled.into_iter().enumerate() {
                    if hit {
                        free_at[u] = free_at[u].max(job.dispatch) + mig.stall_cycles;
                    }
                }
            }
            plan = next;
            observed.clear();
        }
        // The epoch clock above ticks on offered jobs (rejected or not),
        // but a rejected job contributes no observed traffic and no
        // service.
        if !guard.admits(job.dispatch) {
            guard.reject(job, completions, rejected, merged);
            continue;
        }
        for &q in &job.members {
            for tb in &queries[q].batches {
                *observed.entry(tb.table()).or_insert(0) += tb.lookups();
            }
        }
        let complete = serve_scattered(
            backend,
            plan.flat(),
            tiered.gather,
            job,
            merge_queries(queries, &job.members),
            0,
            free_at,
            completions,
            merged,
        )?;
        guard.admit(complete);
    }
    Ok(())
}

/// Groups queries into dispatch jobs. Without coalescing every query is
/// its own job released at its arrival; with coalescing a group closes
/// when full or when its oldest member has waited `max_wait` cycles.
fn coalesce(arrivals: &[Cycle], coalescing: Option<Coalescing>) -> Vec<Job> {
    let Some(c) = coalescing else {
        return arrivals
            .iter()
            .enumerate()
            .map(|(i, &t)| Job {
                dispatch: t,
                members: vec![i],
            })
            .collect();
    };
    let mut jobs = Vec::new();
    let mut i = 0;
    while i < arrivals.len() {
        let deadline = arrivals[i] + c.max_wait;
        let mut members = vec![i];
        i += 1;
        while i < arrivals.len() && members.len() < c.max_queries && arrivals[i] <= deadline {
            members.push(i);
            i += 1;
        }
        // A full group releases with its filling query; a deadline group
        // waits out the window (the coalescer cannot know no further
        // query will arrive).
        let dispatch = if members.len() == c.max_queries {
            arrivals[*members.last().unwrap()]
        } else {
            deadline
        };
        jobs.push(Job { dispatch, members });
    }
    jobs
}

/// Concatenates the member queries of one job into a single trace.
fn merge_queries(queries: &[SlsTrace], members: &[usize]) -> SlsTrace {
    if members.len() == 1 {
        return queries[members[0]].clone();
    }
    let mut merged = SlsTrace::default();
    for &q in members {
        merged.batches.extend(queries[q].batches.iter().cloned());
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::policy::ShardedDispatch;
    use recnmp_baselines::HostBaseline;

    fn quick_cfg(qps: f64, queries: usize, policy: DispatchPolicy) -> ServingConfig {
        ServingConfig {
            process: ArrivalProcess::Poisson,
            qps,
            queries,
            shape: QueryShape::new(2, 2, 8),
            mode: ServingMode::Queued(policy),
            coalescing: None,
            max_queue_depth: None,
            seed: 11,
        }
    }

    #[test]
    fn summary_percentiles_are_nearest_rank() {
        let lat: Vec<Cycle> = (1..=100).collect();
        let s = LatencySummary::from_latencies(&lat);
        assert_eq!((s.p50, s.p95, s.p99, s.max), (50, 95, 99, 100));
        assert!((s.mean - 50.5).abs() < 1e-9);
        let zero = LatencySummary::from_latencies(&[]);
        assert_eq!(zero.max, 0);
    }

    #[test]
    fn coalescing_honors_size_and_deadline() {
        let arrivals = vec![0, 10, 20, 500, 520, 2000];
        let jobs = coalesce(&arrivals, Some(Coalescing::new(3, 100)));
        let groups: Vec<Vec<usize>> = jobs.iter().map(|j| j.members.clone()).collect();
        assert_eq!(groups, vec![vec![0, 1, 2], vec![3, 4], vec![5]]);
        // Full group releases at its filling arrival; deadline groups at
        // first-arrival + max_wait.
        assert_eq!(jobs[0].dispatch, 20);
        assert_eq!(jobs[1].dispatch, 600);
        assert_eq!(jobs[2].dispatch, 2100);
    }

    #[test]
    fn serving_accounts_queue_wait() {
        // Low offered load: latency ≈ service. Extreme offered load: the
        // tail must include queueing delay on the single host pipeline.
        let mut relaxed = HostBaseline::new(1, 2).unwrap();
        let low = serve(
            &mut relaxed,
            &quick_cfg(1_000.0, 12, DispatchPolicy::FifoSingleQueue),
        )
        .unwrap();
        let mut slammed = HostBaseline::new(1, 2).unwrap();
        let hot = serve(
            &mut slammed,
            &quick_cfg(50_000_000.0, 12, DispatchPolicy::FifoSingleQueue),
        )
        .unwrap();
        assert!(hot.summary().p99 > low.summary().p99);
        assert_eq!(low.latencies.len(), 12);
        assert_eq!(
            low.report.insts,
            12 * quick_cfg(1.0, 1, DispatchPolicy::RoundRobin)
                .shape
                .lookups_per_query()
        );
        assert_eq!(low.report.query_completions, low.completions);
    }

    #[test]
    fn policies_coincide_on_a_single_server() {
        let reports: Vec<ServingReport> = DispatchPolicy::ALL
            .iter()
            .map(|&p| {
                let mut host = HostBaseline::new(1, 2).unwrap();
                serve(&mut host, &quick_cfg(100_000.0, 8, p)).unwrap()
            })
            .collect();
        assert_eq!(reports[0].latencies, reports[1].latencies);
        assert_eq!(reports[1].latencies, reports[2].latencies);
    }

    #[test]
    fn sharded_single_server_pays_exactly_the_gather_cost() {
        // On one server the scatter degenerates to one shard, so the
        // sharded completion schedule equals the queued FIFO schedule
        // shifted by base + 1*per_shard gather cycles per query.
        use crate::serving::policy::GatherCost;
        use recnmp_backend::PlacementPolicy;

        let queued = quick_cfg(100_000.0, 8, DispatchPolicy::FifoSingleQueue);
        let mut host = HostBaseline::new(1, 2).unwrap();
        let base = serve(&mut host, &queued).unwrap();

        let mut sharded_cfg = queued;
        let mut dispatch = ShardedDispatch::new(PlacementPolicy::Hash);
        dispatch.gather = GatherCost::new(100, 7);
        sharded_cfg.mode = ServingMode::Sharded(dispatch);
        let mut host2 = HostBaseline::new(1, 2).unwrap();
        let sharded = serve(&mut host2, &sharded_cfg).unwrap();

        assert_eq!(sharded.report.insts, base.report.insts);
        for (s, q) in sharded.completions.iter().zip(&base.completions) {
            assert_eq!(*s, q + 107);
        }
    }

    #[test]
    fn queue_depth_bound_rejects_overload_and_none_is_unbounded() {
        // Unbounded behavior is byte-identical to the historical
        // scheduler; a tight bound under extreme load must reject.
        let cfg = quick_cfg(50_000_000.0, 16, DispatchPolicy::FifoSingleQueue);
        let mut a = HostBaseline::new(1, 2).unwrap();
        let unbounded = serve(&mut a, &cfg).unwrap();
        assert!(unbounded.rejected.is_empty());
        assert_eq!(unbounded.report.queries_rejected, 0);

        let mut bounded_cfg = cfg;
        bounded_cfg.max_queue_depth = Some(2);
        let mut b = HostBaseline::new(1, 2).unwrap();
        let bounded = serve(&mut b, &bounded_cfg).unwrap();
        assert!(
            !bounded.rejected.is_empty(),
            "a depth-2 queue under 50M qps must reject"
        );
        assert_eq!(
            bounded.report.queries_rejected,
            bounded.rejected.len() as u64
        );
        // Rejected queries complete at dispatch: zero latency entries.
        for &q in &bounded.rejected {
            assert_eq!(bounded.latencies[q], 0);
        }
        // The summary ignores rejected queries, so the bounded tail can
        // only improve on the unbounded one.
        assert!(bounded.summary().p99 <= unbounded.summary().p99);
        // Every admitted query still ran to completion.
        assert_eq!(
            bounded.latencies.len() - bounded.rejected.len(),
            bounded
                .latencies
                .iter()
                .enumerate()
                .filter(|(i, _)| !bounded.rejected.contains(i))
                .count()
        );
    }

    #[test]
    fn queue_depth_bound_applies_to_sharded_mode() {
        use recnmp_backend::PlacementPolicy;
        let mut cfg = quick_cfg(50_000_000.0, 16, DispatchPolicy::FifoSingleQueue);
        cfg.mode = ServingMode::Sharded(ShardedDispatch::new(PlacementPolicy::Hash));
        cfg.max_queue_depth = Some(2);
        let mut host = HostBaseline::new(1, 2).unwrap();
        let report = serve(&mut host, &cfg).unwrap();
        assert!(!report.rejected.is_empty());
        assert_eq!(report.report.queries_rejected, report.rejected.len() as u64);
        // Rejected work never reached a channel: dispatched lookups
        // cover exactly the admitted queries.
        let all: u64 = 16 * cfg.shape.lookups_per_query();
        let rejected: u64 = report.rejected.len() as u64 * cfg.shape.lookups_per_query();
        assert_eq!(report.report.insts, all - rejected);
    }

    #[test]
    fn sharded_mode_surfaces_capacity_overflow() {
        use recnmp_backend::PlacementPolicy;
        let mut cfg = quick_cfg(100_000.0, 4, DispatchPolicy::FifoSingleQueue);
        let mut dispatch = ShardedDispatch::new(PlacementPolicy::CapacityGreedy);
        dispatch.channel_capacity = Some(ByteSize::bytes(1)); // nothing fits
        cfg.mode = ServingMode::Sharded(dispatch);
        let mut host = HostBaseline::new(1, 2).unwrap();
        assert!(matches!(serve(&mut host, &cfg), Err(SimError::Config(_))));
    }
}
