//! The query-serving subsystem: open-loop load generation, batch
//! scheduling policies, and tail-latency accounting over any
//! [`SlsBackend`](recnmp_backend::SlsBackend).
//!
//! RecNMP's end-to-end claim is about query latency under production
//! load, yet trace replay only yields aggregate cycles. This module turns
//! the cycle-level simulators into a queueing system:
//!
//! * [`arrivals`] — deterministic open-loop generators
//!   ([`ArrivalProcess::Poisson`]/[`ArrivalProcess::Uniform`]) driven by
//!   `recnmp_types::rng`, and the per-query trace stream ([`QueryStream`])
//!   parameterized by offered QPS, batch size, and model kind
//!   ([`QueryShape::for_model`]);
//! * [`policy`] — serving modes ([`ServingMode`]): **queued** dispatch
//!   under a [`DispatchPolicy`] (FIFO single queue, round-robin per
//!   channel, least-outstanding-work), or **sharded** scatter/gather
//!   ([`ShardedDispatch`]) where each query fans out to every channel
//!   owning one of its tables under a placement policy
//!   ([`PlacementPolicy`]) and pays a host [`GatherCost`] merge —
//!   optionally fronted by a host-side hot-embedding cache
//!   ([`HostCacheSpec`], with the placement built from the residual
//!   post-cache load) and inter-query RankCache prefetch
//!   ([`PrefetchSpec`]) — or
//!   **tiered** scatter/gather ([`TieredDispatch`]) over a DRAM+SSD
//!   server space with optional epoch-based promotion
//!   ([`EpochPromotion`]); plus optional batch [`Coalescing`] with a
//!   max-wait deadline;
//! * [`scheduler`] — [`serve`]: dispatches queries onto the backend's
//!   servers (cluster channels via `SlsBackend::try_run_on`) and tracks
//!   per-query enqueue→completion latency in simulated cycles
//!   ([`ServingReport`], [`LatencySummary`] with p50/p95/p99/mean/max).
//!   In sharded mode a query completes at the max of its shard
//!   completions plus the gather cost;
//! * [`fleet`] — rack-scale serving: a [`Fleet`] of N node backends
//!   behind a front-end router ([`RouterPolicy`]), a two-level
//!   [`FleetPlacementPlan`](recnmp_backend::FleetPlacementPlan) with
//!   cross-node hot-table replication, per-node scatter/gather and an
//!   inter-node [`NetworkCost`] on the result bytes shipped back to the
//!   router ([`serve_fleet`], [`fleet_sweep`]);
//! * [`sweep`] — throughput–latency curves over a QPS sweep
//!   ([`qps_sweep`]), anchored at a probed saturation rate
//!   ([`saturation_qps`]) with the knee identified
//!   ([`SweepCurve::knee`]); shared drivers [`sweep_matrix`],
//!   [`placement_sweep`] and [`tiered_sweep`] feed both the
//!   `serve_sweep` binary and the experiment harness.
//!
//! The model: each dispatched job occupies one server for exactly the
//! cycles its cycle-level run reports; jobs queue when their server is
//! busy. Hardware state persists across jobs per server (sustained
//! traffic keeps row buffers and caches warm); idle gaps are not
//! separately simulated. Everything downstream of a seed is
//! deterministic — same seed and config give byte-identical latency
//! vectors.
//!
//! # Examples
//!
//! ```
//! use recnmp_baselines::HostBaseline;
//! use recnmp_sim::serving::{serve, DispatchPolicy, QueryShape, ServingConfig};
//!
//! let mut host = HostBaseline::new(1, 2).unwrap();
//! let cfg = ServingConfig::poisson(10_000.0, 16, QueryShape::new(2, 2, 8), 42);
//! let report = serve(&mut host, &cfg).unwrap();
//! assert_eq!(report.latencies.len(), 16);
//! let s = report.summary();
//! assert!(s.p50 <= s.p99);
//! ```

pub mod arrivals;
pub mod faults;
pub mod fleet;
mod host_cache;
pub mod policy;
pub mod scheduler;
pub mod sweep;

pub use arrivals::{ArrivalProcess, QueryShape, QueryStream};
pub use faults::{
    ChannelDegrade, FaultPlan, FaultSpec, HedgePolicy, NodeCrash, NodeHealth, QueryOutcome,
    ResilienceConfig, RetryPolicy, ShardTimeout, SloPolicy,
};
pub use fleet::{
    fleet_saturation, fleet_sweep, fleet_sweep_at, resilience_sweep, serve_fleet,
    serve_fleet_resilient, Fleet, FleetConfig, FleetCurve, FleetDispatch, FleetFactory,
    FleetReport, NetworkCost, ResilienceArm, ResilienceSpec, ResilienceSweep, RouterPolicy,
};
pub use policy::{
    Coalescing, DispatchPolicy, EpochPromotion, GatherCost, HostCacheSpec, PrefetchSpec,
    ServingMode, ShardedDispatch, TieredDispatch,
};
pub use recnmp_backend::{PlacementPolicy, TierSpec, TieredPolicy};
pub use scheduler::{serve, LatencySummary, ServingConfig, ServingReport};
pub use sweep::{
    caching_sweep, placement_sweep, qps_sweep, qps_sweep_at, reference_caching_arms,
    reference_channel_capacity, reference_cluster4, reference_cluster4_optimized, reference_tiered,
    saturation_qps, sweep_matrix, tiered_sweep, BackendFactory, LabeledCurve, NamedFactories,
    SweepCurve, SweepPoint, SweepSpec,
};
