//! Capacity experiment: serving behaviour as the embedding footprint
//! outgrows DRAM and spills onto the SSD-class near-data tier.
//!
//! This is the reproduction's own extension past the paper (like
//! `fig19_placement`): RecNMP assumes the model fits in memory, while
//! production footprints grow toward terabytes. The tiered hierarchy
//! (RecSSD-style in-storage SLS under RecFlash-style frequency-tiered
//! placement) answers the question Figure 1's footprint analysis raises
//! — what happens to the serving knee when it no longer fits?

use recnmp_backend::{
    MigrationCost, PromotionPolicy, StorageTier, TableUsage, TierSpec, TieredPlacementPlan,
    TieredPolicy,
};
use recnmp_types::ByteSize;

use super::serving::{knee_note, push_curve_rows};
use super::{ExperimentResult, Scale};
use crate::render::{f2, TextTable};
use crate::serving::{
    reference_tiered, serve, tiered_sweep, ArrivalProcess, EpochPromotion, GatherCost, QueryShape,
    QueryStream, ServingConfig, ServingMode, SweepSpec, TieredDispatch,
};

const SEED: u64 = 0x57a8;

/// Geometry of the capacity sweep's serving system.
const DRAM_CHANNELS: usize = 4;
const SSD_UNITS: usize = 2;

/// Tables of the capacity workload and the footprint of each
/// (`EmbeddingTableSpec::dlrm_default()`: one million 128-byte rows —
/// the spec `QueryStream` generates against).
const TABLES: usize = 16;
const TABLE_BYTES: u64 = 128_000_000;

/// Footprint-to-DRAM ratios swept, as (numerator, denominator, label):
/// at 0.5x everything fits twice over, at 1x exactly, at 8x no single
/// table fits any channel and both policies degenerate to all-SSD.
const RATIOS: [(u64, u64, &str); 5] = [
    (1, 2, "0.5x"),
    (1, 1, "1x"),
    (2, 1, "2x"),
    (4, 1, "4x"),
    (8, 1, "8x"),
];

/// The tier geometry at footprint/DRAM ratio `num/den`: total DRAM
/// capacity is `footprint * den / num`, split evenly across the
/// channels; the SSD units are always large enough for the whole model.
fn tiers_at(num: u64, den: u64) -> TierSpec {
    let footprint = TABLES as u64 * TABLE_BYTES;
    TierSpec {
        dram_channels: DRAM_CHANNELS,
        dram_channel_capacity: ByteSize::bytes(footprint * den / (num * DRAM_CHANNELS as u64)),
        ssd_units: SSD_UNITS,
        ssd_unit_capacity: ByteSize::gib(4),
    }
}

/// The capacity workload: each query samples 4 of the 16 tables with
/// traffic weights `(rank+1)^-1.5`, hot ranks strided across the id
/// space (stride 5, coprime to 16) so id-ordered hash placement does
/// not get the frequency ordering for free. Sampling is what makes the
/// capacity story graceful: a query whose tables all live in DRAM never
/// touches the SSD tier, so spilling the cold tail slows only the
/// queries that actually reference it.
fn capacity_shape(scale: Scale) -> QueryShape {
    match scale {
        Scale::Quick => QueryShape::new(TABLES, 2, 4),
        Scale::Full => QueryShape::new(TABLES, 4, 8),
    }
    .with_table_skew(1.5)
    .with_skew_rotation(5)
    .with_table_sampling(4)
}

/// Capacity sweep (our `fig_capacity`): knee QPS and tail latency as the
/// embedding footprint sweeps 0.5x–8x of DRAM capacity on a 4-channel +
/// 2-SSD tiered system, hash vs frequency-tiered placement, plus an
/// epoch-promotion demonstration at the 4x point.
pub fn fig_capacity(scale: Scale) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig_capacity",
        "Capacity sweep (tiered storage): serving knee vs footprint/DRAM ratio",
    );
    let shape = capacity_shape(scale);
    let spec = SweepSpec {
        process: ArrivalProcess::Poisson,
        shape,
        utilizations: match scale {
            Scale::Quick => vec![0.4, 0.8, 1.2],
            Scale::Full => vec![0.2, 0.4, 0.6, 0.8, 1.0, 1.2],
        },
        queries: scale.scaled(14, 32),
        probe_queries: scale.scaled(6, 10),
        seed: SEED,
    };
    // The static profile both placement policies see: the sweep's own
    // query stream, so the plan split reported here is exactly the one
    // the curves were served under.
    let usage = TableUsage::from_traces(&QueryStream::new(shape, SEED).take_queries(spec.queries));

    let mut knees = TextTable::new(
        format!(
            "tiered[{DRAM_CHANNELS}+{SSD_UNITS}]: knee vs footprint ratio, {} tables x {} MB",
            TABLES,
            TABLE_BYTES / 1_000_000
        ),
        &[
            "footprint/DRAM",
            "policy",
            "saturation qps",
            "knee qps",
            "p99@top (us)",
            "DRAM tables",
            "DRAM traffic",
        ],
    );
    let mut points = TextTable::new(
        format!(
            "tiered[{DRAM_CHANNELS}+{SSD_UNITS}]: sweep points, {} queries/point",
            spec.queries
        ),
        &[
            "ratio",
            "policy",
            "util",
            "offered qps",
            "achieved qps",
            "p50 (us)",
            "p95 (us)",
            "p99 (us)",
            "sustained",
        ],
    );

    for (num, den, label) in RATIOS {
        let tiers = tiers_at(num, den);
        let mut factory = || reference_tiered(tiers);
        let curves = tiered_sweep(
            &mut factory,
            &TieredPolicy::COMPARED,
            GatherCost::host_default(),
            tiers,
            &spec,
        )
        .expect("tiered sweep");
        for curve in &curves {
            let policy = match curve.mode {
                ServingMode::Tiered(t) => t.policy,
                _ => unreachable!("tiered sweeps return tiered modes"),
            };
            let plan = TieredPlacementPlan::build(tiers, &usage, policy).expect("tiered plan");
            let top = curve.points.last().expect("sweep points");
            knees.push_row(vec![
                label.to_string(),
                curve.mode.name().to_string(),
                format!("{:.0}", curve.saturation_qps),
                curve
                    .knee()
                    .map_or("none".to_string(), |p| format!("{:.0}", p.offered_qps)),
                f2(top.summary.percentiles_us().2),
                format!("{}", plan.tables_in(StorageTier::Dram)),
                format!("{:.0}%", 100.0 * plan.load_share(StorageTier::Dram)),
            ]);
            push_points_with_ratio(&mut points, label, curve);
            result.notes.push(knee_note(label, curve));
        }
    }
    result.tables.push(knees);
    result.tables.push(points);
    result.tables.push(promotion_demo(scale, shape));

    result.notes.push(
        "Each ratio divides the same 2.048 GB model footprint by the DRAM capacity; every \
         query samples 4 of 16 tables with Zipf-1.5 weights whose hot ranks are strided \
         across table ids (stride 5). Frequency-tiered placement keeps the hot head in \
         DRAM, so most queries never touch the SSD units and the knee degrades with a \
         graceful slope; hash placement strands hot tables on SSD, so nearly every query \
         pays the flash read path and the knee collapses toward the all-SSD floor."
            .into(),
    );
    result
}

/// Rows of one ratio's curve, prefixed with the ratio label.
fn push_points_with_ratio(table: &mut TextTable, label: &str, curve: &crate::serving::SweepCurve) {
    let mut scratch = TextTable::new(
        "",
        &table.headers[1..]
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
    );
    push_curve_rows(&mut scratch, curve);
    for mut row in scratch.rows {
        row.insert(0, label.to_string());
        table.push_row(row);
    }
}

/// The epoch-promotion demonstration at the 4x point: serving starts
/// from the *hash* split (the operator does not know the traffic
/// profile), and epoch rebalances migrate hot tables up — converging
/// toward the frequency-tiered plan while paying modeled migration
/// stalls on the way.
fn promotion_demo(scale: Scale, shape: QueryShape) -> TextTable {
    let tiers = tiers_at(4, 1);
    let queries = scale.scaled(48, 96);
    // The fixed load sits midway between the two static plans'
    // saturation rates: unsustainable for the uninformed hash split,
    // comfortable for the informed frequency split — exactly the regime
    // where learning the split at runtime pays.
    let sat_of = |policy| {
        let mut probe = || reference_tiered(tiers);
        crate::serving::saturation_qps(
            &mut probe,
            ServingMode::tiered(policy, tiers),
            shape,
            scale.scaled(6, 10),
            SEED,
        )
        .expect("saturation probe")
    };
    let hash_sat = sat_of(TieredPolicy::Hash);
    let freq_sat = sat_of(TieredPolicy::FrequencyTiered { replicate_hot: 0 });
    let offered = 0.5 * (hash_sat + freq_sat);

    let mut promote = TieredDispatch::new(TieredPolicy::Hash, tiers);
    promote.promotion = Some(EpochPromotion {
        epoch_queries: scale.scaled(8, 16),
        policy: PromotionPolicy {
            hysteresis_pct: 20,
            // 1 cycle/KiB (~1.2 GB/s at DDR4-2400): promoting one 128 MB
            // table stalls its units for ~125k cycles (~104 us).
            migration: MigrationCost::new(10_000, 1),
        },
    });
    let modes = [
        ServingMode::tiered(TieredPolicy::Hash, tiers),
        ServingMode::Tiered(promote),
        ServingMode::tiered(TieredPolicy::FrequencyTiered { replicate_hot: 0 }, tiers),
    ];

    let mut table = TextTable::new(
        format!(
            "4x footprint, promotion: {queries} queries at {offered:.0} qps \
             (midway between the hash and frequency-tiered saturation rates)"
        ),
        &[
            "mode",
            "achieved qps",
            "p50 (us)",
            "p95 (us)",
            "p99 (us)",
            "max (us)",
        ],
    );
    for mode in modes {
        let cfg = ServingConfig {
            process: ArrivalProcess::Poisson,
            qps: offered,
            queries,
            shape,
            mode,
            coalescing: None,
            max_queue_depth: None,
            seed: SEED,
        };
        let mut backend = reference_tiered(tiers);
        let report = serve(backend.as_mut(), &cfg).expect("promotion serve");
        push_latency_row(
            &mut table,
            mode.name(),
            report.achieved_qps(),
            &report.latencies,
        );
        if matches!(mode, ServingMode::Tiered(t) if t.promotion.is_some()) {
            // The steady-state row: the second half of the run, after
            // the epoch rebalances have pulled the hot head into DRAM
            // and paid their migration stalls.
            let half = report.latencies.len() / 2;
            let window: Vec<recnmp_types::Cycle> = report.completions[half..].to_vec();
            let (first, last) = (
                window.iter().copied().min().unwrap_or(0),
                window.iter().copied().max().unwrap_or(0),
            );
            let achieved = if last > first {
                recnmp_types::units::completions_to_qps(window.len() as u64 - 1, last - first)
            } else {
                0.0
            };
            push_latency_row(
                &mut table,
                "tiered-promote (steady)",
                achieved,
                &report.latencies[half..],
            );
        }
    }
    table
}

/// One row of the promotion table from a latency sample.
fn push_latency_row(
    table: &mut TextTable,
    mode: &str,
    achieved: f64,
    latencies: &[recnmp_types::Cycle],
) {
    let s = crate::serving::LatencySummary::from_latencies(latencies);
    let (p50, p95, p99) = s.percentiles_us();
    table.push_row(vec![
        mode.to_string(),
        format!("{achieved:.0}"),
        f2(p50),
        f2(p95),
        f2(p99),
        f2(recnmp_types::units::cycles_to_us(s.max)),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The committed acceptance claim: at 4x DRAM footprint the
    /// frequency-tiered plan sustains a higher knee and a lower
    /// top-load p99 than hash, and neither collapses to zero.
    #[test]
    fn frequency_tiered_beats_hash_at_4x() {
        let r = fig_capacity(Scale::Quick);
        let knees = &r.tables[0];
        let row = |ratio: &str, policy: &str| {
            knees
                .rows
                .iter()
                .find(|row| row[0] == ratio && row[1] == policy)
                .unwrap_or_else(|| panic!("missing {ratio}/{policy} row"))
        };
        let knee = |row: &Vec<String>| row[3].parse::<f64>().unwrap_or(0.0);
        let p99 = |row: &Vec<String>| row[4].parse::<f64>().unwrap();
        let (hash, freq) = (row("4x", "tiered-hash"), row("4x", "tiered-frequency"));
        assert!(
            knee(freq) > knee(hash),
            "4x knees: frequency {} vs hash {}",
            freq[3],
            hash[3]
        );
        assert!(
            p99(freq) < p99(hash),
            "4x top-load p99: frequency {} vs hash {}",
            freq[4],
            hash[4]
        );
        assert!(knee(freq) > 0.0 && knee(hash) > 0.0, "neither collapses");
    }

    #[test]
    fn capacity_slope_is_graceful_not_a_cliff() {
        let r = fig_capacity(Scale::Quick);
        let knees = &r.tables[0];
        // Frequency-tiered saturation decays monotonically (within 2%
        // measurement slack) as the footprint ratio grows, and even the
        // all-SSD extreme still serves.
        let sats: Vec<f64> = knees
            .rows
            .iter()
            .filter(|row| row[1] == "tiered-frequency")
            .map(|row| row[2].parse::<f64>().unwrap())
            .collect();
        assert_eq!(sats.len(), RATIOS.len());
        // Capacity loss never helps...
        assert!(sats.windows(2).all(|w| w[1] <= w[0] * 1.02), "{sats:?}");
        // ...and once the model has spilled (>= 2x), each further
        // capacity halving costs a bounded factor — a slope, not a
        // cliff — while the first spill point stays well above the
        // all-SSD floor (the frequency split keeps the hot head in
        // DRAM, so entering the flash tier is paid only by the cold
        // tail's queries, not by every query).
        let spill = &sats[2..];
        assert!(spill.windows(2).all(|w| w[1] * 8.0 >= w[0]), "{sats:?}");
        assert!(spill[0] > 3.0 * *sats.last().unwrap(), "{sats:?}");
        assert!(*sats.last().unwrap() > 0.0, "{sats:?}");
        // DRAM holds fewer tables as capacity shrinks; at 8x no table
        // fits and both policies are all-SSD.
        let dram_tables: Vec<usize> = knees
            .rows
            .iter()
            .filter(|row| row[1] == "tiered-frequency")
            .map(|row| row[5].parse::<usize>().unwrap())
            .collect();
        assert!(
            dram_tables.windows(2).all(|w| w[1] <= w[0]),
            "{dram_tables:?}"
        );
        assert!(dram_tables[0] > 0, "{dram_tables:?}");
        assert_eq!(*dram_tables.last().unwrap(), 0, "{dram_tables:?}");
    }

    #[test]
    fn promotion_closes_most_of_the_hash_gap() {
        let r = fig_capacity(Scale::Quick);
        let demo = &r.tables[2];
        assert_eq!(demo.rows.len(), 4, "3 modes + the steady-state row");
        let col = |mode: &str, idx: usize| {
            demo.rows
                .iter()
                .find(|row| row[0] == mode)
                .map(|row| row[idx].parse::<f64>().unwrap())
                .unwrap_or_else(|| panic!("missing {mode} row"))
        };
        let (achieved, p50, p99) = (
            |m: &str| col(m, 1),
            |m: &str| col(m, 2),
            |m: &str| col(m, 4),
        );
        // The offered load sits between the two static saturation rates,
        // so the uninformed hash split falls behind while the informed
        // frequency split keeps up.
        assert!(p99("tiered-frequency") <= p99("tiered-hash"));
        // Promotion starts from that same hash split but learns the
        // traffic: its completion throughput beats static hash, and once
        // the hot head has migrated (second half of the run) its median
        // latency drops below what hash ever reaches.
        assert!(
            achieved("tiered-promote") > achieved("tiered-hash"),
            "promote {} vs hash {} qps",
            achieved("tiered-promote"),
            achieved("tiered-hash")
        );
        assert!(
            p50("tiered-promote (steady)") < p50("tiered-hash"),
            "steady p50 {} vs hash p50 {}",
            p50("tiered-promote (steady)"),
            p50("tiered-hash")
        );
    }

    #[test]
    fn capacity_experiment_is_deterministic() {
        let a = fig_capacity(Scale::Quick);
        let b = fig_capacity(Scale::Quick);
        assert_eq!(a, b);
    }
}
