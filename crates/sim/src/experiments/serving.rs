//! Serving experiments: tail latency under open-loop load (the Figure 18
//! latency claim recast as throughput–latency curves).

use recnmp::RecNmpClusterConfig;
use recnmp_baselines::HostBaseline;
use recnmp_model::RecModelKind;

use super::{ExperimentResult, Scale};
use crate::render::{f2, TextTable};
use crate::serving::{qps_sweep, ArrivalProcess, DispatchPolicy, QueryShape, SweepCurve};

const SEED: u64 = 0x5e12;

/// Labeled backend factories the sweep iterates over.
type NamedFactories<'a> = Vec<(&'a str, Box<crate::serving::BackendFactory<'a>>)>;

/// Figure-18-style tail latency: p50/p95/p99 vs offered QPS for the host
/// baseline and a 4-channel RecNMP cluster under each dispatch policy,
/// with the saturation knee identified per curve.
pub fn fig18_tail_latency(scale: Scale) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig18_tail_latency",
        "Figure 18 (serving): tail latency vs offered load over the cluster",
    );
    let shape = match scale {
        Scale::Quick => QueryShape::new(2, 2, 8),
        Scale::Full => QueryShape::for_model(RecModelKind::Rm1Small, 4),
    };
    let queries = scale.scaled(32, 48);
    let probe = scale.scaled(8, 12);
    let utilizations = [0.3, 0.6, 0.9, 1.2];

    let mut backends: NamedFactories<'_> = vec![
        (
            "host",
            Box::new(|| Box::new(HostBaseline::new(4, 2).expect("host config"))),
        ),
        (
            "recnmp-cluster[4]",
            Box::new(|| {
                let config = RecNmpClusterConfig::builder()
                    .channels(4)
                    .dimms(1)
                    .ranks_per_dimm(2)
                    .build()
                    .expect("cluster config");
                Box::new(recnmp::RecNmpCluster::new(config).expect("cluster"))
            }),
        ),
    ];

    let mut knees = Vec::new();
    for (label, factory) in backends.iter_mut() {
        let mut table = TextTable::new(
            format!("{label}: Poisson open-loop, {} queries/point", queries),
            &[
                "policy",
                "util",
                "offered qps",
                "achieved qps",
                "p50 (us)",
                "p95 (us)",
                "p99 (us)",
                "sustained",
            ],
        );
        for policy in DispatchPolicy::ALL {
            let curve = qps_sweep(
                factory.as_mut(),
                policy,
                ArrivalProcess::Poisson,
                shape,
                &utilizations,
                queries,
                probe,
                SEED,
            )
            .expect("serving sweep");
            for p in &curve.points {
                let (p50, p95, p99) = p.summary.percentiles_us();
                table.push_row(vec![
                    policy.name().to_string(),
                    f2(p.utilization),
                    format!("{:.0}", p.offered_qps),
                    format!("{:.0}", p.achieved_qps),
                    f2(p50),
                    f2(p95),
                    f2(p99),
                    if p.sustained() { "yes" } else { "no" }.to_string(),
                ]);
            }
            knees.push(knee_note(label, &curve));
        }
        result.tables.push(table);
    }
    result.notes.append(&mut knees);
    result.notes.push(
        "Open-loop Poisson arrivals; latency is enqueue-to-completion in simulated time. \
         The knee is the highest offered load whose completion throughput stays within \
         90% of arrivals; beyond it the p99 tail grows without bound."
            .into(),
    );
    result
}

fn knee_note(label: &str, curve: &SweepCurve) -> String {
    match curve.knee() {
        Some(p) => format!(
            "{label}/{}: saturation {:.0} qps, knee at {:.0} qps (util {:.1})",
            curve.policy.name(),
            curve.saturation_qps,
            p.offered_qps,
            p.utilization
        ),
        None => format!(
            "{label}/{}: saturation {:.0} qps, no sustained point in sweep",
            curve.policy.name(),
            curve.saturation_qps
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_latency_tables_cover_backends_and_policies() {
        let r = fig18_tail_latency(Scale::Quick);
        assert_eq!(r.tables.len(), 2);
        for t in &r.tables {
            // 3 policies x 4 utilization points.
            assert_eq!(t.rows.len(), 12);
            // The lightest load is sustained on every policy.
            for policy_rows in t.rows.chunks(4) {
                assert_eq!(policy_rows[0][7], "yes");
            }
        }
        // One knee note per backend x policy, plus the methodology note.
        assert_eq!(r.notes.len(), 2 * 3 + 1);
    }

    #[test]
    fn tail_latency_is_deterministic() {
        let a = fig18_tail_latency(Scale::Quick);
        let b = fig18_tail_latency(Scale::Quick);
        assert_eq!(a, b);
    }
}
