//! Serving experiments: tail latency under open-loop load (the Figure 18
//! latency claim recast as throughput–latency curves) and the placement
//! comparison behind sharded scatter/gather serving.

use recnmp_backend::PlacementPolicy;
use recnmp_baselines::HostBaseline;
use recnmp_model::RecModelKind;

use super::{ExperimentResult, Scale};
use crate::render::{f2, TextTable};
use crate::serving::{
    placement_sweep, reference_channel_capacity, reference_cluster4, sweep_matrix, ArrivalProcess,
    DispatchPolicy, GatherCost, NamedFactories, QueryShape, ServingMode, SweepCurve, SweepSpec,
};

const SEED: u64 = 0x5e12;

/// Figure-18-style tail latency: p50/p95/p99 vs offered QPS for the host
/// baseline and a 4-channel RecNMP cluster under each dispatch policy,
/// with the saturation knee identified per curve.
pub fn fig18_tail_latency(scale: Scale) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig18_tail_latency",
        "Figure 18 (serving): tail latency vs offered load over the cluster",
    );
    let shape = match scale {
        Scale::Quick => QueryShape::new(2, 2, 8),
        Scale::Full => QueryShape::for_model(RecModelKind::Rm1Small, 4),
    };
    let spec = SweepSpec {
        process: ArrivalProcess::Poisson,
        shape,
        utilizations: vec![0.3, 0.6, 0.9, 1.2],
        queries: scale.scaled(32, 48),
        probe_queries: scale.scaled(8, 12),
        seed: SEED,
    };

    let mut backends: NamedFactories<'_> = vec![
        (
            "host",
            Box::new(|| Box::new(HostBaseline::new(4, 2).expect("host config"))),
        ),
        ("recnmp-cluster[4]", Box::new(reference_cluster4)),
    ];
    let modes: Vec<ServingMode> = DispatchPolicy::ALL
        .iter()
        .map(|&p| ServingMode::Queued(p))
        .collect();
    let curves = sweep_matrix(&mut backends, &modes, &spec).expect("serving sweep");

    let mut knees = Vec::new();
    for per_backend in curves.chunks(modes.len()) {
        let label = per_backend[0].backend.as_str();
        let mut table = TextTable::new(
            format!("{label}: Poisson open-loop, {} queries/point", spec.queries),
            &[
                "policy",
                "util",
                "offered qps",
                "achieved qps",
                "p50 (us)",
                "p95 (us)",
                "p99 (us)",
                "sustained",
            ],
        );
        for labeled in per_backend {
            push_curve_rows(&mut table, &labeled.curve);
            knees.push(knee_note(label, &labeled.curve));
        }
        result.tables.push(table);
    }
    result.notes.append(&mut knees);
    result.notes.push(
        "Open-loop Poisson arrivals; latency is enqueue-to-completion in simulated time. \
         The knee is the highest offered load whose completion throughput stays within \
         90% of arrivals; beyond it the p99 tail grows without bound."
            .into(),
    );
    result
}

/// Placement comparison (our Figure 19): sharded scatter/gather serving
/// on a 4-channel cluster under hash, capacity-greedy and
/// frequency-balanced placement, with per-table traffic skewed so that
/// placement actually matters. All policies are swept at the same
/// absolute offered loads (fractions of the sharded-hash baseline's
/// saturation), so knee QPS and p99-at-fixed-load compare directly.
pub fn fig19_placement(scale: Scale) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig19_placement",
        "Figure 19 (placement): sharded serving under skewed table traffic, by placement policy",
    );
    let shape = match scale {
        Scale::Quick => QueryShape::reference_skewed(),
        Scale::Full => QueryShape::for_model(RecModelKind::Rm1Small, 4).with_table_skew(1.5),
    };
    let spec = SweepSpec {
        process: ArrivalProcess::Poisson,
        shape,
        utilizations: vec![0.4, 0.8, 1.2],
        queries: scale.scaled(24, 48),
        probe_queries: scale.scaled(8, 12),
        seed: SEED,
    };
    let curves = placement_sweep(
        &mut reference_cluster4,
        &PlacementPolicy::COMPARED,
        GatherCost::host_default(),
        Some(reference_channel_capacity()),
        &spec,
    )
    .expect("placement sweep");

    let mut table = TextTable::new(
        format!(
            "recnmp-cluster[4], sharded scatter/gather: table skew 1.5, {} queries/point",
            spec.queries
        ),
        &[
            "placement",
            "util",
            "offered qps",
            "achieved qps",
            "p50 (us)",
            "p95 (us)",
            "p99 (us)",
            "sustained",
        ],
    );
    for curve in &curves {
        push_curve_rows(&mut table, curve);
        result.notes.push(knee_note("recnmp-cluster[4]", curve));
    }
    result.tables.push(table);

    let knee_qps = |c: &SweepCurve| c.knee().map_or(0.0, |p| p.offered_qps);
    let top_p99 = |c: &SweepCurve| c.points.last().expect("points").summary.p99;
    let hash = &curves[0];
    let freq = curves
        .iter()
        .find(|c| c.mode.name() == "sharded-frequency")
        .expect("frequency curve");
    result.notes.push(format!(
        "frequency-balanced vs hash at fixed loads: knee {:.0} vs {:.0} qps, \
         p99 at the top load {} vs {} cycles — balancing hot traffic (and \
         replicating the hottest table) moves the saturation knee",
        knee_qps(freq),
        knee_qps(hash),
        top_p99(freq),
        top_p99(hash),
    ));
    result.notes.push(
        "Sharded scatter/gather: each query fans out to the channels owning its tables \
         and completes at its slowest shard plus a host gather cost (60 + 20/shard \
         cycles). Per-table traffic follows (t+1)^-1.5, the access skew of Figure 7."
            .into(),
    );
    result
}

pub(super) fn push_curve_rows(table: &mut TextTable, curve: &SweepCurve) {
    for p in &curve.points {
        let (p50, p95, p99) = p.summary.percentiles_us();
        table.push_row(vec![
            curve.mode.name().to_string(),
            f2(p.utilization),
            format!("{:.0}", p.offered_qps),
            format!("{:.0}", p.achieved_qps),
            f2(p50),
            f2(p95),
            f2(p99),
            if p.sustained() { "yes" } else { "no" }.to_string(),
        ]);
    }
}

pub(super) fn knee_note(label: &str, curve: &SweepCurve) -> String {
    match curve.knee() {
        Some(p) => format!(
            "{label}/{}: saturation {:.0} qps, knee at {:.0} qps (util {:.1})",
            curve.mode.name(),
            curve.saturation_qps,
            p.offered_qps,
            p.utilization
        ),
        None => format!(
            "{label}/{}: saturation {:.0} qps, no sustained point in sweep",
            curve.mode.name(),
            curve.saturation_qps
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_latency_tables_cover_backends_and_policies() {
        let r = fig18_tail_latency(Scale::Quick);
        assert_eq!(r.tables.len(), 2);
        for t in &r.tables {
            // 3 policies x 4 utilization points.
            assert_eq!(t.rows.len(), 12);
            // The lightest load is sustained on every policy.
            for policy_rows in t.rows.chunks(4) {
                assert_eq!(policy_rows[0][7], "yes");
            }
        }
        // One knee note per backend x policy, plus the methodology note.
        assert_eq!(r.notes.len(), 2 * 3 + 1);
    }

    #[test]
    fn tail_latency_is_deterministic() {
        let a = fig18_tail_latency(Scale::Quick);
        let b = fig18_tail_latency(Scale::Quick);
        assert_eq!(a, b);
    }

    #[test]
    fn placement_experiment_shows_frequency_beating_hash() {
        let r = fig19_placement(Scale::Quick);
        assert_eq!(r.tables.len(), 1);
        // 3 placement policies x 3 load points.
        assert_eq!(r.tables[0].rows.len(), 9);
        // The acceptance claim: on the skewed workload the
        // frequency-balanced plan sustains a strictly higher knee than
        // hash, or (when both knee at the same sweep point) a strictly
        // lower p99 at the shared top load.
        let knee = |name: &str| {
            r.notes
                .iter()
                .find(|n| n.contains(name))
                .and_then(|n| {
                    n.split("knee at ")
                        .nth(1)
                        .and_then(|s| s.split(' ').next())
                        .and_then(|s| s.parse::<f64>().ok())
                })
                .unwrap_or(0.0)
        };
        let (hash, freq) = (knee("sharded-hash"), knee("sharded-frequency"));
        let p99 = |policy: &str| {
            r.tables[0]
                .rows
                .iter()
                .rev()
                .find(|row| row[0] == policy)
                .map(|row| row[6].parse::<f64>().unwrap())
                .unwrap()
        };
        assert!(
            freq > hash || p99("sharded-frequency") < p99("sharded-hash"),
            "frequency-balanced must beat hash: knees {freq} vs {hash}, \
             p99 {} vs {}",
            p99("sharded-frequency"),
            p99("sharded-hash")
        );
    }

    #[test]
    fn placement_experiment_is_deterministic() {
        let a = fig19_placement(Scale::Quick);
        let b = fig19_placement(Scale::Quick);
        assert_eq!(a, b);
    }
}
