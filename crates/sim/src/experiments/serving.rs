//! Serving experiments: tail latency under open-loop load (the Figure 18
//! latency claim recast as throughput–latency curves) and the placement
//! comparison behind sharded scatter/gather serving.

use recnmp_backend::PlacementPolicy;
use recnmp_baselines::HostBaseline;
use recnmp_model::RecModelKind;

use super::{ExperimentResult, Scale};
use crate::render::{f2, TextTable};
use crate::serving::{
    caching_sweep, placement_sweep, reference_caching_arms, reference_channel_capacity,
    reference_cluster4, reference_cluster4_optimized, serve, sweep_matrix, ArrivalProcess,
    DispatchPolicy, GatherCost, NamedFactories, QueryShape, ServingConfig, ServingMode, SweepCurve,
    SweepSpec,
};

const SEED: u64 = 0x5e12;

/// Figure-18-style tail latency: p50/p95/p99 vs offered QPS for the host
/// baseline and a 4-channel RecNMP cluster under each dispatch policy,
/// with the saturation knee identified per curve.
pub fn fig18_tail_latency(scale: Scale) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig18_tail_latency",
        "Figure 18 (serving): tail latency vs offered load over the cluster",
    );
    let shape = match scale {
        Scale::Quick => QueryShape::new(2, 2, 8),
        Scale::Full => QueryShape::for_model(RecModelKind::Rm1Small, 4),
    };
    let spec = SweepSpec {
        process: ArrivalProcess::Poisson,
        shape,
        utilizations: vec![0.3, 0.6, 0.9, 1.2],
        queries: scale.scaled(32, 48),
        probe_queries: scale.scaled(8, 12),
        seed: SEED,
    };

    let mut backends: NamedFactories<'_> = vec![
        (
            "host",
            Box::new(|| Box::new(HostBaseline::new(4, 2).expect("host config"))),
        ),
        ("recnmp-cluster[4]", Box::new(reference_cluster4)),
    ];
    let modes: Vec<ServingMode> = DispatchPolicy::ALL
        .iter()
        .map(|&p| ServingMode::Queued(p))
        .collect();
    let curves = sweep_matrix(&mut backends, &modes, &spec).expect("serving sweep");

    let mut knees = Vec::new();
    for per_backend in curves.chunks(modes.len()) {
        let label = per_backend[0].backend.as_str();
        let mut table = TextTable::new(
            format!("{label}: Poisson open-loop, {} queries/point", spec.queries),
            &[
                "policy",
                "util",
                "offered qps",
                "achieved qps",
                "p50 (us)",
                "p95 (us)",
                "p99 (us)",
                "sustained",
            ],
        );
        for labeled in per_backend {
            push_curve_rows(&mut table, &labeled.curve);
            knees.push(knee_note(label, &labeled.curve));
        }
        result.tables.push(table);
    }
    result.notes.append(&mut knees);
    result.notes.push(
        "Open-loop Poisson arrivals; latency is enqueue-to-completion in simulated time. \
         The knee is the highest offered load whose completion throughput stays within \
         90% of arrivals; beyond it the p99 tail grows without bound."
            .into(),
    );
    result
}

/// Placement comparison (our Figure 19): sharded scatter/gather serving
/// on a 4-channel cluster under hash, capacity-greedy and
/// frequency-balanced placement, with per-table traffic skewed so that
/// placement actually matters. All policies are swept at the same
/// absolute offered loads (fractions of the sharded-hash baseline's
/// saturation), so knee QPS and p99-at-fixed-load compare directly.
pub fn fig19_placement(scale: Scale) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig19_placement",
        "Figure 19 (placement): sharded serving under skewed table traffic, by placement policy",
    );
    let shape = match scale {
        Scale::Quick => QueryShape::reference_skewed(),
        Scale::Full => QueryShape::for_model(RecModelKind::Rm1Small, 4).with_table_skew(1.5),
    };
    let spec = SweepSpec {
        process: ArrivalProcess::Poisson,
        shape,
        utilizations: vec![0.4, 0.8, 1.2],
        queries: scale.scaled(24, 48),
        probe_queries: scale.scaled(8, 12),
        seed: SEED,
    };
    let curves = placement_sweep(
        &mut reference_cluster4,
        &PlacementPolicy::COMPARED,
        GatherCost::host_default(),
        Some(reference_channel_capacity()),
        &spec,
    )
    .expect("placement sweep");

    let mut table = TextTable::new(
        format!(
            "recnmp-cluster[4], sharded scatter/gather: table skew 1.5, {} queries/point",
            spec.queries
        ),
        &[
            "placement",
            "util",
            "offered qps",
            "achieved qps",
            "p50 (us)",
            "p95 (us)",
            "p99 (us)",
            "sustained",
        ],
    );
    for curve in &curves {
        push_curve_rows(&mut table, curve);
        result.notes.push(knee_note("recnmp-cluster[4]", curve));
    }
    result.tables.push(table);

    let knee_qps = |c: &SweepCurve| c.knee().map_or(0.0, |p| p.offered_qps);
    let top_p99 = |c: &SweepCurve| c.points.last().expect("points").summary.p99;
    let hash = &curves[0];
    let freq = curves
        .iter()
        .find(|c| c.mode.name() == "sharded-frequency")
        .expect("frequency curve");
    result.notes.push(format!(
        "frequency-balanced vs hash at fixed loads: knee {:.0} vs {:.0} qps, \
         p99 at the top load {} vs {} cycles — balancing hot traffic (and \
         replicating the hottest table) moves the saturation knee",
        knee_qps(freq),
        knee_qps(hash),
        top_p99(freq),
        top_p99(hash),
    ));
    result.notes.push(
        "Sharded scatter/gather: each query fans out to the channels owning its tables \
         and completes at its slowest shard plus a host gather cost (60 + 20/shard \
         cycles). Per-table traffic follows (t+1)^-1.5, the access skew of Figure 7."
            .into(),
    );
    result
}

/// Cache-aware serving (the co-design figure): sharded scatter/gather on
/// the RecNMP-opt 4-channel cluster with a host-side hot-embedding cache
/// swept over capacity × placement policy, plus inter-query RankCache
/// prefetch on the largest co-designed arm. The row streams are hotter
/// than the reference workload (Zipf 1.2) so a bounded cache sees real
/// repeat traffic; every arm runs at the same absolute offered loads,
/// anchored to the cache-less frequency-balanced baseline's saturation.
pub fn fig_cache_serving(scale: Scale) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig_cache_serving",
        "Cache-aware serving: host-cache capacity x placement over the RecNMP-opt cluster",
    );
    let shape = match scale {
        Scale::Quick => QueryShape::reference_skewed().with_row_skew(1.2),
        Scale::Full => QueryShape::for_model(RecModelKind::Rm1Small, 4)
            .with_table_skew(1.5)
            .with_row_skew(1.2),
    };
    let spec = SweepSpec {
        process: ArrivalProcess::Poisson,
        shape,
        utilizations: vec![0.4, 0.8, 1.2],
        queries: scale.scaled(24, 48),
        probe_queries: scale.scaled(8, 12),
        seed: SEED,
    };
    let arms = reference_caching_arms();
    let modes: Vec<ServingMode> = arms.iter().map(|(_, m)| *m).collect();
    let curves = caching_sweep(&mut reference_cluster4_optimized, modes[0], &modes, &spec)
        .expect("caching sweep");

    let mut table = TextTable::new(
        format!(
            "recnmp-opt-cluster[4], sharded scatter/gather with host cache: \
             table skew {:.1}, row skew {:.1}, {} queries/point",
            shape.table_skew, shape.row_skew, spec.queries
        ),
        &[
            "arm",
            "util",
            "offered qps",
            "achieved qps",
            "p50 (us)",
            "p95 (us)",
            "p99 (us)",
            "sustained",
        ],
    );
    for ((label, _), curve) in arms.iter().zip(&curves) {
        push_labeled_rows(&mut table, label, curve);
        result.notes.push(knee_note(label, curve));
    }
    result.tables.push(table);

    // Locality accounting at the knee-region load: one measured run per
    // arm at 0.8× the anchor saturation surfaces what each layer
    // absorbed — host-cache hits, bytes that never reached a channel,
    // RankCache hits, and vectors the inter-query prefetcher staged.
    let mut stats = TextTable::new(
        "locality layers at util 0.8 (one serving run per arm)",
        &[
            "arm",
            "host hits",
            "host misses",
            "host hit rate",
            "absorbed KiB",
            "rank-cache hits",
            "prefetch fills",
        ],
    );
    let qps = 0.8 * curves[0].saturation_qps;
    for (label, mode) in &arms {
        let mut backend = reference_cluster4_optimized();
        backend.reset_caches();
        let cfg = ServingConfig {
            process: spec.process,
            qps,
            queries: spec.queries,
            shape,
            mode: *mode,
            coalescing: None,
            max_queue_depth: None,
            seed: SEED,
        };
        let r = serve(backend.as_mut(), &cfg).expect("stats run").report;
        let offered = r.host_hits + r.host_misses;
        let hit_rate = if offered > 0 {
            format!("{:.1}%", 100.0 * r.host_hits as f64 / offered as f64)
        } else {
            "-".to_string()
        };
        stats.push_row(vec![
            label.clone(),
            r.host_hits.to_string(),
            r.host_misses.to_string(),
            hit_rate,
            format!("{:.1}", r.host_absorbed_bytes as f64 / 1024.0),
            r.cache.hits.to_string(),
            r.prefetch_fills.to_string(),
        ]);
    }
    result.tables.push(stats);

    let knee_qps = |c: &SweepCurve| c.knee().map_or(0.0, |p| p.offered_qps);
    let top_p99 = |c: &SweepCurve| c.points.last().expect("points").summary.p99;
    let (bare, co_designed) = (&curves[0], &curves[3]);
    result.notes.push(format!(
        "co-design verdict: cached-frequency@1MiB vs the cache-less frequency baseline \
         at fixed loads: knee {:.0} vs {:.0} qps, p99 at the top load {} vs {} cycles — \
         absorbing hot rows at the host *and* placing tables by the residual traffic \
         must move the knee or the tail, or the cache is not earning its capacity",
        knee_qps(co_designed),
        knee_qps(bare),
        top_p99(co_designed),
        top_p99(bare),
    ));
    result.notes.push(
        "Host cache: capacity-bounded LRU over whole vectors of the 4 hottest tables; \
         an absorbed lookup never reaches a channel (the shard runs less work) and \
         costs 2 host cycles instead. Placement under a cache packs channels by the \
         residual (post-absorption) traffic. Prefetch stages the hottest observed \
         vectors into idle channels' RankCaches between arrivals, bounded by the \
         idle gap at 4 cycles per 64-byte burst."
            .into(),
    );
    result
}

pub(super) fn push_curve_rows(table: &mut TextTable, curve: &SweepCurve) {
    push_labeled_rows(table, curve.mode.name(), curve);
}

/// Like [`push_curve_rows`] but with an explicit first-column label —
/// the caching arms reuse one mode name at two capacities, so the mode
/// name alone cannot identify a row.
pub(super) fn push_labeled_rows(table: &mut TextTable, label: &str, curve: &SweepCurve) {
    for p in &curve.points {
        let (p50, p95, p99) = p.summary.percentiles_us();
        table.push_row(vec![
            label.to_string(),
            f2(p.utilization),
            format!("{:.0}", p.offered_qps),
            format!("{:.0}", p.achieved_qps),
            f2(p50),
            f2(p95),
            f2(p99),
            if p.sustained() { "yes" } else { "no" }.to_string(),
        ]);
    }
}

pub(super) fn knee_note(label: &str, curve: &SweepCurve) -> String {
    match curve.knee() {
        Some(p) => format!(
            "{label}/{}: saturation {:.0} qps, knee at {:.0} qps (util {:.1})",
            curve.mode.name(),
            curve.saturation_qps,
            p.offered_qps,
            p.utilization
        ),
        None => format!(
            "{label}/{}: saturation {:.0} qps, no sustained point in sweep",
            curve.mode.name(),
            curve.saturation_qps
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_latency_tables_cover_backends_and_policies() {
        let r = fig18_tail_latency(Scale::Quick);
        assert_eq!(r.tables.len(), 2);
        for t in &r.tables {
            // 3 policies x 4 utilization points.
            assert_eq!(t.rows.len(), 12);
            // The lightest load is sustained on every policy.
            for policy_rows in t.rows.chunks(4) {
                assert_eq!(policy_rows[0][7], "yes");
            }
        }
        // One knee note per backend x policy, plus the methodology note.
        assert_eq!(r.notes.len(), 2 * 3 + 1);
    }

    #[test]
    fn tail_latency_is_deterministic() {
        let a = fig18_tail_latency(Scale::Quick);
        let b = fig18_tail_latency(Scale::Quick);
        assert_eq!(a, b);
    }

    #[test]
    fn placement_experiment_shows_frequency_beating_hash() {
        let r = fig19_placement(Scale::Quick);
        assert_eq!(r.tables.len(), 1);
        // 3 placement policies x 3 load points.
        assert_eq!(r.tables[0].rows.len(), 9);
        // The acceptance claim: on the skewed workload the
        // frequency-balanced plan sustains a strictly higher knee than
        // hash, or (when both knee at the same sweep point) a strictly
        // lower p99 at the shared top load.
        let knee = |name: &str| {
            r.notes
                .iter()
                .find(|n| n.contains(name))
                .and_then(|n| {
                    n.split("knee at ")
                        .nth(1)
                        .and_then(|s| s.split(' ').next())
                        .and_then(|s| s.parse::<f64>().ok())
                })
                .unwrap_or(0.0)
        };
        let (hash, freq) = (knee("sharded-hash"), knee("sharded-frequency"));
        let p99 = |policy: &str| {
            r.tables[0]
                .rows
                .iter()
                .rev()
                .find(|row| row[0] == policy)
                .map(|row| row[6].parse::<f64>().unwrap())
                .unwrap()
        };
        assert!(
            freq > hash || p99("sharded-frequency") < p99("sharded-hash"),
            "frequency-balanced must beat hash: knees {freq} vs {hash}, \
             p99 {} vs {}",
            p99("sharded-frequency"),
            p99("sharded-hash")
        );
    }

    #[test]
    fn placement_experiment_is_deterministic() {
        let a = fig19_placement(Scale::Quick);
        let b = fig19_placement(Scale::Quick);
        assert_eq!(a, b);
    }

    #[test]
    fn cache_serving_co_design_beats_the_bare_baseline() {
        let r = fig_cache_serving(Scale::Quick);
        assert_eq!(r.tables.len(), 2);
        // 5 arms x 3 load points.
        assert_eq!(r.tables[0].rows.len(), 15);

        // The acceptance claim of the co-design: at the same absolute
        // offered loads, the 1 MiB host cache over residual-load
        // frequency placement must sustain a strictly higher knee than
        // the cache-less frequency baseline, or cut its p99 at the
        // shared top load.
        let rows_of = |arm: &str| -> Vec<&Vec<String>> {
            r.tables[0].rows.iter().filter(|w| w[0] == arm).collect()
        };
        let knee = |arm: &str| {
            rows_of(arm)
                .iter()
                .rev()
                .find(|w| w[7] == "yes")
                .map_or(0.0, |w| w[2].parse::<f64>().unwrap())
        };
        let top_p99 = |arm: &str| {
            rows_of(arm)
                .last()
                .map(|w| w[6].parse::<f64>().unwrap())
                .unwrap()
        };
        let (bare, co) = ("sharded-frequency", "cached-frequency@1MiB");
        assert!(
            knee(co) > knee(bare) || top_p99(co) < top_p99(bare),
            "cache+placement co-design must move the knee or the tail: \
             knees {} vs {}, p99 {} vs {}",
            knee(co),
            knee(bare),
            top_p99(co),
            top_p99(bare)
        );

        // Layer accounting: the cached arms absorbed real traffic, the
        // bare arms none, and the prefetch arm staged vectors.
        let stat = |arm: &str| {
            r.tables[1]
                .rows
                .iter()
                .find(|w| w[0] == arm)
                .unwrap_or_else(|| panic!("no stats row for {arm}"))
        };
        assert!(stat(co)[1].parse::<u64>().unwrap() > 0, "host hits");
        assert_eq!(stat(bare)[1], "0");
        assert_eq!(stat(bare)[4], "0.0");
        assert!(
            stat("sharded-frequency+prefetch")[6]
                .parse::<u64>()
                .unwrap()
                > 0,
            "prefetch staged nothing"
        );
        // Prefetch warms RankCaches the demand stream alone would miss.
        let rank_hits = |arm: &str| stat(arm)[5].parse::<u64>().unwrap();
        assert!(rank_hits("sharded-frequency+prefetch") >= rank_hits(bare));
        // The host cache absorbs the hot set before it reaches any
        // channel, so the channels' own caches see far fewer hits.
        assert!(rank_hits(co) < rank_hits(bare));
    }

    #[test]
    fn cache_serving_experiment_is_deterministic() {
        let a = fig_cache_serving(Scale::Quick);
        let b = fig_cache_serving(Scale::Quick);
        assert_eq!(a, b);
    }
}
