//! Section V SLS-acceleration experiments (Figures 12, 14, 15, 16).

use recnmp::{RecNmpConfig, SchedulingPolicy};
use recnmp_cache::CacheConfig;

use super::{ExperimentResult, Scale};
use crate::render::{f2, pct, x2, TextTable};
use crate::speedup::SpeedupEngine;
use crate::workload::TraceKind;

fn quiet(mut cfg: RecNmpConfig) -> RecNmpConfig {
    // Refresh adds noise to small quick-mode runs without changing the
    // comparisons; both sides of every comparison share this setting.
    cfg.refresh = false;
    cfg
}

fn engine(scale: Scale, tables: usize, seed: u64) -> SpeedupEngine {
    let rounds = scale.scaled(2, 6);
    let batch = scale.scaled(32, 32);
    SpeedupEngine::with_workload(TraceKind::Production, tables, rounds, batch, seed)
}

/// The four RecNMP-opt variants of Figure 15(a), in order.
fn opt_ladder(dimms: u8, ranks: u8) -> [(&'static str, RecNmpConfig); 4] {
    let base = quiet(RecNmpConfig::with_ranks(dimms, ranks));
    let mut cache = base.clone();
    cache.rank_cache = Some(CacheConfig::rank_cache_default());
    let mut sched = cache.clone();
    sched.scheduling = SchedulingPolicy::TableAware;
    let mut profiled = sched.clone();
    profiled.hot_entry_profiling = true;
    [
        ("RecNMP-base", base),
        ("+ RankCache", cache),
        ("+ table-aware sched", sched),
        ("+ hot-entry profile", profiled),
    ]
}

/// Figure 12: RankCache hit rate under the co-optimizations.
pub fn fig12_hitrate(scale: Scale) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig12_hitrate",
        "Figure 12: RankCache hit rate (1 MiB aggregate) with co-optimizations",
    );
    let e = engine(scale, 8, 0x12);
    let mut t = TextTable::new(
        "Comb-8 aggregate hit rate (8 x 128 KiB RankCache)",
        &["configuration", "hit rate", "compulsory limit"],
    );
    for (name, cfg) in opt_ladder(4, 2).iter().skip(1) {
        let report = e.run_nmp(cfg).expect("valid config");
        t.push_row(vec![
            name.to_string(),
            pct(report.cache.effective_hit_rate()),
            pct(report.cache.compulsory_limit()),
        ]);
    }
    result.tables.push(t);

    // Per-table hit rates, fully optimized vs unoptimized.
    let mut tp = TextTable::new(
        "per-table hit rate (single-table runs)",
        &[
            "table",
            "no optimization",
            "sched + profile",
            "ideal (compulsory)",
        ],
    );
    for table in 0..8usize {
        let rounds = scale.scaled(2, 6);
        let batch = scale.scaled(32, 32);
        let single = SpeedupEngine::new(
            crate::workload::SlsWorkload {
                batches: {
                    let spec = recnmp_trace::EmbeddingTableSpec::dlrm_default();
                    // Single-table workload: the T<i> preset re-tagged as
                    // table 0 so the one-entry layout lines up.
                    let preset = recnmp_trace::production::PRODUCTION_TABLES[table];
                    let mut g = recnmp_trace::TraceGenerator::new(
                        recnmp_types::TableId::new(0),
                        spec,
                        recnmp_trace::IndexDistribution::Zipf { s: preset.zipf_s },
                        0x12aa + table as u64,
                    )
                    .with_burst_reuse(preset.reuse_p, preset.reuse_window);
                    (0..rounds).map(|_| g.batch(batch, 80)).collect()
                },
                specs: vec![recnmp_trace::EmbeddingTableSpec::dlrm_default()],
            },
            0x12bb,
        );
        let ladder = opt_ladder(4, 2);
        let plain = single.run_nmp(&ladder[1].1).expect("valid config");
        let opt = single.run_nmp(&ladder[3].1).expect("valid config");
        tp.push_row(vec![
            format!("T{}", table + 1),
            pct(plain.cache.effective_hit_rate()),
            pct(opt.cache.effective_hit_rate()),
            pct(opt.cache.compulsory_limit()),
        ]);
    }
    result.tables.push(tp);
    result.notes.push(
        "Paper anchor: with both optimizations the hit rate approaches the ideal \
         (infinite-cache) limit per table, T8 lowest."
            .into(),
    );
    result
}

/// Figure 14: RecNMP-base scaling and load imbalance.
pub fn fig14_scaling(scale: Scale) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig14_scaling",
        "Figure 14: RecNMP-base latency scaling and rank load imbalance",
    );
    let e = engine(scale, 8, 0x14);
    let mut t = TextTable::new(
        "(a) memory-latency speedup over the DRAM baseline",
        &[
            "config (DIMMxRank)",
            "ppp=1",
            "ppp=2",
            "ppp=4",
            "ppp=8",
            "page-colored",
        ],
    );
    for (dimms, ranks) in [(1u8, 2u8), (1, 4), (2, 2), (4, 2)] {
        let mut row = vec![format!("{dimms}x{ranks}")];
        let host = e
            .run_host(&quiet(RecNmpConfig::with_ranks(dimms, ranks)))
            .expect("valid config");
        for ppp in [1usize, 2, 4, 8] {
            let mut cfg = quiet(RecNmpConfig::with_ranks(dimms, ranks));
            cfg.poolings_per_packet = ppp;
            let nmp = e.run_nmp(&cfg).expect("valid config");
            row.push(x2(host.cycles_per_lookup() / nmp.cycles_per_lookup()));
        }
        let colored = e
            .run_nmp_colored(&quiet(RecNmpConfig::with_ranks(dimms, ranks)))
            .expect("valid config");
        row.push(x2(host.cycles_per_lookup() / colored.cycles_per_lookup()));
        t.push_row(row);
    }
    result.tables.push(t);

    let mut tb = TextTable::new(
        "(b) load imbalance: fraction of a packet on its busiest rank (ppp=8)",
        &["ranks", "ideal", "mean", "max"],
    );
    for (dimms, ranks) in [(1u8, 2u8), (2, 2), (4, 2)] {
        let cfg = quiet(RecNmpConfig::with_ranks(dimms, ranks));
        let report = e.run_nmp(&cfg).expect("valid config");
        let total = dimms as f64 * ranks as f64;
        let max = report
            .slowest_rank_fraction
            .iter()
            .copied()
            .fold(0.0f64, f64::max);
        tb.push_row(vec![
            format!("{}", dimms as u32 * ranks as u32),
            pct(1.0 / total),
            pct(report.mean_imbalance()),
            pct(max),
        ]);
    }
    result.tables.push(tb);
    result.notes.push(
        "Paper anchors: 1.61-1.96x (2-rank), 2.40-3.83x (4-rank), 3.37-7.35x (8-rank); \
         the top of each range is the page-colored layout; imbalance shrinks as packets \
         grow."
            .into(),
    );
    result
}

/// Figure 15: the optimization ladder and the RankCache size sweep.
pub fn fig15_opt(scale: Scale) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig15_opt",
        "Figure 15: RecNMP-opt latency breakdown and cache-size sweep (8-rank)",
    );
    let e = engine(scale, 8, 0x15);
    let host = e
        .run_host(&quiet(RecNmpConfig::with_ranks(4, 2)))
        .expect("valid config");

    let mut t = TextTable::new(
        "(a) cumulative optimizations (8 ranks, 8 poolings/packet)",
        &[
            "configuration",
            "speedup vs DRAM",
            "norm. latency",
            "hit rate",
        ],
    );
    let mut best_speedup = 0.0;
    for (name, cfg) in opt_ladder(4, 2) {
        let nmp = e.run_nmp(&cfg).expect("valid config");
        let speedup = host.cycles_per_lookup() / nmp.cycles_per_lookup();
        best_speedup = f64::max(best_speedup, speedup);
        t.push_row(vec![
            name.to_string(),
            x2(speedup),
            f2(1.0 / speedup),
            pct(nmp.cache.effective_hit_rate()),
        ]);
    }
    result.tables.push(t);

    let mut tb = TextTable::new(
        "(b) RankCache capacity sweep (full optimizations)",
        &["capacity / rank", "hit rate", "speedup vs DRAM"],
    );
    for kib in [8u64, 16, 32, 64, 128, 256, 512, 1024] {
        let mut cfg = quiet(RecNmpConfig::optimized(4, 2));
        cfg.rank_cache = Some(CacheConfig::new(kib * 1024, 64, 4));
        let nmp = e.run_nmp(&cfg).expect("valid config");
        tb.push_row(vec![
            recnmp_types::units::human_bytes(kib * 1024),
            pct(nmp.cache.effective_hit_rate()),
            x2(host.cycles_per_lookup() / nmp.cycles_per_lookup()),
        ]);
    }
    result.tables.push(tb);
    result.notes.push(format!(
        "Paper anchors: 6.1x base, 7.2x +cache, 8.8x +sched, 9.8x +profile; sweep \
         optimum at 128 KiB. Best measured here: {best_speedup:.2}x."
    ));
    result
}

/// Figure 16: RecNMP vs Chameleon and TensorDIMM.
pub fn fig16_comparison(scale: Scale) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig16_comparison",
        "Figure 16: host vs Chameleon vs TensorDIMM vs RecNMP-opt",
    );
    for kind in [TraceKind::Random, TraceKind::Production] {
        let rounds = scale.scaled(2, 6);
        let batch = scale.scaled(32, 32);
        let e = SpeedupEngine::new(
            crate::workload::SlsWorkload::build(kind, 8, rounds, batch, 80, 0x16),
            0x16,
        );
        let mut t = TextTable::new(
            format!(
                "memory-latency speedup over host ({} traces)",
                match kind {
                    TraceKind::Random => "random",
                    TraceKind::Production => "production",
                }
            ),
            &["config", "Chameleon", "TensorDIMM", "RecNMP-opt"],
        );
        for (dimms, ranks) in [(2u8, 1u8), (4, 1), (2, 2), (4, 2)] {
            let cfg = quiet(RecNmpConfig::optimized(dimms, ranks));
            let host = e.run_host(&cfg).expect("valid config").cycles_per_lookup();
            let ch = e
                .run_chameleon(&cfg)
                .expect("valid config")
                .cycles_per_lookup();
            let td = e
                .run_tensordimm(&cfg)
                .expect("valid config")
                .cycles_per_lookup();
            let nmp = e.run_nmp(&cfg).expect("valid config").cycles_per_lookup();
            t.push_row(vec![
                format!("{dimms}x{ranks}"),
                x2(host / ch),
                x2(host / td),
                x2(host / nmp),
            ]);
        }
        result.tables.push(t);
    }
    result.notes.push(
        "Paper anchors: RecNMP 2.4-4.8x over TensorDIMM and 3.3-6.4x over Chameleon as \
         ranks/DIMM grow; 1.4x/1.9x even at one rank per DIMM; RecNMP alone extracts \
         extra performance (~40%) from production-trace locality."
            .into(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_x(s: &str) -> f64 {
        s.trim_end_matches('x').parse().unwrap()
    }

    #[test]
    fn fig14_speedup_grows_with_ranks_and_packet_size() {
        let r = fig14_scaling(Scale::Quick);
        let rows = &r.tables[0].rows;
        // 8-rank ppp=8 beats 2-rank ppp=8.
        assert!(parse_x(&rows[3][4]) > parse_x(&rows[0][4]), "{rows:?}");
        // ppp=8 beats ppp=1 on the 8-rank config.
        assert!(parse_x(&rows[3][4]) > parse_x(&rows[3][1]), "{rows:?}");
    }

    #[test]
    fn fig12_hit_rates_are_positive_and_bounded() {
        let r = fig12_hitrate(Scale::Quick);
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        for row in &r.tables[0].rows {
            let hit = parse(&row[1]);
            let limit = parse(&row[2]);
            assert!(hit > 0.0 && hit <= limit + 1.0, "{row:?}");
        }
        assert_eq!(r.tables[1].rows.len(), 8); // T1..T8
    }

    #[test]
    fn fig15_ladder_is_monotonic() {
        let r = fig15_opt(Scale::Quick);
        let rows = &r.tables[0].rows;
        let s: Vec<f64> = rows.iter().map(|row| parse_x(&row[1])).collect();
        assert!(s[1] >= s[0] * 0.98, "cache did not help: {s:?}");
        assert!(s[3] >= s[1] * 0.98, "full opt regressed: {s:?}");
        assert!(s[3] > s[0], "opt no better than base: {s:?}");
    }

    #[test]
    fn fig16_recnmp_wins_everywhere() {
        let r = fig16_comparison(Scale::Quick);
        for table in &r.tables {
            for row in &table.rows {
                let ch = parse_x(&row[1]);
                let td = parse_x(&row[2]);
                let nmp = parse_x(&row[3]);
                // TensorDIMM >= Chameleon; they tie when the config is
                // DRAM-bound rather than command-delivery-bound.
                assert!(td >= ch * 0.98, "{row:?}");
                // Multi-rank DIMMs are where rank-level parallelism pays;
                // at one rank per DIMM the paper's margin (1.4x) comes
                // from the cache+scheduling optimizations and narrows.
                let multi_rank = row[0].ends_with("x2");
                if multi_rank {
                    assert!(nmp > td, "{row:?}");
                } else {
                    assert!(nmp > td * 0.9, "{row:?}");
                }
            }
        }
    }
}
