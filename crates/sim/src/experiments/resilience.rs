//! The resilience experiment: availability and goodput-under-SLO through
//! injected faults, replicated vs unreplicated placement, hedging on/off.

use super::{ExperimentResult, Scale};
use crate::render::{f2, TextTable};
use crate::serving::fleet::{resilience_sweep, Fleet, ResilienceArm, ResilienceSpec};
use crate::serving::{ArrivalProcess, QueryShape};
use recnmp_types::units::cycles_to_us;

const SEED: u64 = 0x5e5111e0;

/// A run's goodput must keep at least this fraction of its pre-fault
/// rate through the fault window to count as sustained — the same bar
/// the CI verdict and the acceptance test enforce.
pub const SUSTAIN_FRACTION: f64 = 0.90;

/// The SLO deadline is this multiple of the fault-free replicated
/// configuration's p99 — generous enough that a healthy fleet never
/// sheds, tight enough that a collapsed one visibly misses it.
const DEADLINE_P99_MULTIPLE: u64 = 3;

fn shape(scale: Scale) -> QueryShape {
    match scale {
        Scale::Quick => QueryShape::new(12, 2, 6)
            .with_table_skew(1.2)
            .with_table_sampling(3),
        Scale::Full => QueryShape::new(24, 4, 8)
            .with_table_skew(1.2)
            .with_table_sampling(4),
    }
}

/// The spec the experiment shares with `serve_sweep --resilience`: same
/// anchors, so the figure and `BENCH_resilience.json` tell one story.
pub(crate) fn reference_spec(scale: Scale, nodes: usize) -> ResilienceSpec {
    ResilienceSpec {
        process: ArrivalProcess::Poisson,
        qps: 40_000.0 * nodes as f64,
        queries: scale.scaled(64, 256),
        shape: shape(scale),
        seed: SEED,
        deadline_p99_multiple: DEADLINE_P99_MULTIPLE,
        sustain_fraction: SUSTAIN_FRACTION,
        degrade_multiplier: 16,
    }
}

/// Fleet resilience (our resilience figure): a reference fleet serving a
/// skewed sampled-table workload through escalating injected faults —
/// none, a mid-horizon node crash, and the crash plus a stuck-at-slow
/// channel on a survivor — under an SLO (deadline =
/// 3x the fault-free p99), bounded retries and optional p95 hedging.
///
/// Four arms cross the two placement flavors with hedging on/off:
///
/// * **fleet-replicated(all)** — every table is replicated onto every
///   node, so the crash triggers failover instead of failure;
/// * **fleet-sharded** — every table has one home, so tables on the
///   crashed node take their queries down with them.
///
/// The claim the acceptance test enforces: through the node crash, the
/// replicated+hedged arm sustains at least
/// [`SUSTAIN_FRACTION`] of its pre-fault goodput-under-SLO, while
/// unreplicated placement collapses.
pub fn fig_resilience(scale: Scale) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig_resilience",
        "Fleet resilience: availability and goodput-under-SLO through injected faults",
    );
    let nodes = 4;
    let spec = reference_spec(scale, nodes);
    let mut make = move || Fleet::reference(nodes);
    let sweep = resilience_sweep(&mut make, &spec).expect("resilience sweep");

    let mut table = TextTable::new(
        format!(
            "{nodes} reference 4-channel nodes, {} queries at {:.0} qps, \
             node {} crashes at cycle {}, SLO deadline {} cycles",
            spec.queries, spec.qps, sweep.crashed_node, sweep.crash_at, sweep.deadline
        ),
        &[
            "faults",
            "placement",
            "hedge",
            "avail",
            "pre-slo",
            "post-slo",
            "sustained",
            "failover",
            "retry",
            "hedges",
            "rej",
            "shed",
            "fail",
        ],
    );
    for arm in &sweep.arms {
        table.push_row(vec![
            arm.faults.to_string(),
            arm.placement.to_string(),
            if arm.hedged { "p95" } else { "off" }.to_string(),
            f2(arm.availability),
            format!("{:.1}%", 100.0 * arm.pre_goodput),
            format!("{:.1}%", 100.0 * arm.post_goodput),
            if arm.sustained { "yes" } else { "no" }.to_string(),
            arm.report.report.failovers.to_string(),
            arm.report.report.retries.to_string(),
            arm.report.report.hedges.to_string(),
            arm.report.report.queries_rejected.to_string(),
            arm.report.report.queries_shed.to_string(),
            arm.report.report.queries_failed.to_string(),
        ]);
    }
    result.tables.push(table);

    result.notes.push(format!(
        "SLO deadline {} cycles ({:.1} us) = {DEADLINE_P99_MULTIPLE}x the fault-free \
         replicated p99 ({} cycles); node {} crashes at cycle {} \
         (mid-horizon); goodput = fraction of offered queries completing within the \
         deadline, windowed before vs after the crash cycle",
        sweep.deadline,
        cycles_to_us(sweep.deadline),
        sweep.baseline_p99,
        sweep.crashed_node,
        sweep.crash_at,
    ));
    let verdict = |arm: &ResilienceArm| {
        if arm.sustained {
            "sustained"
        } else {
            "collapsed"
        }
    };
    result.notes.push(format!(
        "resilience verdict: through the node crash, replicated+hedged keeps {:.1}% of its \
         pre-fault goodput ({}), unreplicated keeps {:.1}% ({}) — replication turns the \
         dead node's tables into failover sets while sharding loses every query that \
         touches them",
        100.0 * sweep.verdict_arm().goodput_ratio(),
        verdict(sweep.verdict_arm()),
        100.0 * sweep.verdict_baseline().goodput_ratio(),
        verdict(sweep.verdict_baseline()),
    ));
    result.notes.push(
        "Faults inject deterministically at scheduled sim-cycles: a crashed node fails \
         over (first discovery pays a re-dispatch penalty), a degraded channel multiplies \
         its service time, and every arm runs bounded exponential-backoff retries with \
         admission control and deadline shedding under the SLO."
            .into(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(
        r: &'a ExperimentResult,
        faults: &str,
        placement: &str,
        hedge: &str,
    ) -> &'a Vec<String> {
        r.tables[0]
            .rows
            .iter()
            .find(|row| row[0] == faults && row[1] == placement && row[2] == hedge)
            .expect("arm row present")
    }

    #[test]
    fn replicated_hedged_sustains_the_crash_and_sharded_collapses() {
        // The acceptance claim, enforced: through a mid-sweep node
        // crash, replicated+hedged keeps >= 90% of its pre-fault goodput
        // under the SLO while unreplicated placement does not.
        let r = fig_resilience(Scale::Quick);
        assert_eq!(row(&r, "crash", "fleet-replicated", "p95")[6], "yes");
        assert_eq!(row(&r, "crash", "fleet-sharded", "off")[6], "no");
    }

    #[test]
    fn zero_faults_complete_everything_everywhere() {
        let r = fig_resilience(Scale::Quick);
        for arm_row in r.tables[0].rows.iter().filter(|row| row[0] == "none") {
            assert_eq!(arm_row[3], "1.00", "fault-free availability");
            assert_eq!(arm_row[12], "0", "fault-free runs fail nothing");
        }
    }

    #[test]
    fn crash_level_counts_failovers_or_failures() {
        let r = fig_resilience(Scale::Quick);
        let repl = row(&r, "crash", "fleet-replicated", "off");
        let shard = row(&r, "crash", "fleet-sharded", "off");
        assert!(
            repl[7].parse::<u64>().unwrap() > 0,
            "replicated crash arm must fail over"
        );
        assert!(
            shard[12].parse::<u64>().unwrap() > 0,
            "sharded crash arm must fail queries"
        );
    }

    #[test]
    fn resilience_experiment_is_deterministic() {
        let a = fig_resilience(Scale::Quick);
        let b = fig_resilience(Scale::Quick);
        assert_eq!(a, b);
    }
}
