//! The fleet-scaling experiment: knee QPS vs node count, pure sharding
//! vs cross-node hot-table replication.

use super::{ExperimentResult, Scale};
use crate::render::{f2, TextTable};
use crate::serving::fleet::{fleet_sweep, Fleet, FleetCurve, FleetDispatch};
use crate::serving::{ArrivalProcess, QueryShape, SweepSpec};

const SEED: u64 = 0xf1ee7;

/// How many of the hottest tables the replicated configuration copies
/// onto every node. Full scale replicates a deeper slice of the Zipf
/// head: at 16 nodes a single-copy hot table's one channel would
/// otherwise cap the whole fleet.
fn hot_tables(scale: Scale) -> usize {
    scale.scaled(2, 8)
}

/// Fleet scaling (our fleet figure): 1→N reference 4-channel nodes at
/// fixed per-node capacity, serving a skewed sampled-table workload
/// under two node-placement flavors:
///
/// * **fleet-sharded** — every table lives on exactly one node, so the
///   node owning the hottest tables caps the whole fleet;
/// * **fleet-replicated(k)** — the k hottest tables (2 quick, 8 full)
///   are replicated onto every node and the router rotates their
///   traffic, so top-load traffic scales with the fleet.
///
/// Both flavors are swept at the same absolute offered loads (fractions
/// of the replicated configuration's saturation — the informed anchor,
/// as in the tiering sweep), so knee QPS and p99-at-fixed-load compare
/// directly, and the knee-vs-nodes series is the scaling claim: the
/// replicated knee grows near-linearly while pure sharding flattens at
/// the hottest node's capacity.
pub fn fig_fleet(scale: Scale) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig_fleet",
        "Fleet scaling: knee QPS vs node count, sharding vs hot-table replication",
    );
    // Full scale carries enough distinct tables (128 over the 16-node
    // fleet's 64 channels) that single-copy tables can spread across the
    // whole fleet instead of bottlenecking on one channel.
    let shape = match scale {
        Scale::Quick => QueryShape::new(12, 2, 6)
            .with_table_skew(1.2)
            .with_table_sampling(3),
        Scale::Full => QueryShape::new(128, 4, 8)
            .with_table_skew(1.2)
            .with_table_sampling(4),
    };
    let node_counts: &[usize] = match scale {
        Scale::Quick => &[1, 2, 4],
        Scale::Full => &[1, 2, 4, 8, 16],
    };
    // Offered work scales with the fleet: a fixed query count would
    // leave a 16-node fleet mostly idle and measure per-query latency
    // instead of capacity, so both the saturation probe and the measured
    // points grow linearly in nodes.
    let queries_per_node = scale.scaled(12, 48);
    let probe_per_node = scale.scaled(8, 16);
    let hot = hot_tables(scale);
    let dispatches = [FleetDispatch::replicated(hot), FleetDispatch::sharded()];

    let mut table = TextTable::new(
        format!(
            "reference 4-channel nodes, skewed sampled-table queries, \
             {queries_per_node}x nodes queries/point"
        ),
        &[
            "nodes",
            "placement",
            "util",
            "offered qps",
            "achieved qps",
            "p50 (us)",
            "p95 (us)",
            "p99 (us)",
            "sustained",
        ],
    );
    // (nodes, replicated-knee qps) series for the scaling note, and the
    // largest fleet's curves for the replication-vs-sharding note.
    let mut replicated_knees: Vec<(usize, f64)> = Vec::new();
    let mut top_curves: Vec<FleetCurve> = Vec::new();
    for &nodes in node_counts {
        let spec = SweepSpec {
            process: ArrivalProcess::Poisson,
            shape,
            utilizations: vec![0.5, 0.9, 1.3],
            queries: queries_per_node * nodes,
            probe_queries: probe_per_node * nodes,
            seed: SEED,
        };
        let mut make = move || Fleet::reference(nodes);
        let curves = fleet_sweep(&mut make, &dispatches, &spec).expect("fleet sweep");
        for curve in &curves {
            for p in &curve.points {
                let (p50, p95, p99) = p.summary.percentiles_us();
                table.push_row(vec![
                    nodes.to_string(),
                    curve.placement.clone(),
                    f2(p.utilization),
                    format!("{:.0}", p.offered_qps),
                    format!("{:.0}", p.achieved_qps),
                    f2(p50),
                    f2(p95),
                    f2(p99),
                    if p.sustained() { "yes" } else { "no" }.to_string(),
                ]);
            }
            result.notes.push(knee_note(curve));
        }
        replicated_knees.push((nodes, knee_qps(&curves[0])));
        if nodes == *node_counts.last().unwrap() {
            top_curves = curves;
        }
    }
    result.tables.push(table);

    let (first_n, first_knee) = replicated_knees[0];
    let (last_n, last_knee) = *replicated_knees.last().unwrap();
    result.notes.push(format!(
        "fleet scaling ({}): replicated knee {:.0} qps at {first_n} node(s) -> {:.0} qps \
         at {last_n} node(s), ratio {:.1}x",
        dispatches[0].label(),
        first_knee,
        last_knee,
        if first_knee > 0.0 {
            last_knee / first_knee
        } else {
            0.0
        },
    ));
    let top_p99 = |c: &FleetCurve| c.points.last().expect("points").summary.p99;
    result.notes.push(format!(
        "replication vs sharding at {last_n} node(s), fixed loads: knee {:.0} vs {:.0} qps, \
         p99 at the top load {} vs {} cycles — replicating the {hot} hottest tables \
         gives top-load traffic a home on every node, while pure sharding pins it to one",
        knee_qps(&top_curves[0]),
        knee_qps(&top_curves[1]),
        top_p99(&top_curves[0]),
        top_p99(&top_curves[1]),
    ));
    result.notes.push(
        "Open-loop Poisson arrivals over a two-level placement (tables -> nodes -> \
         channels). Every query samples its tables by popularity, scatters to the owning \
         nodes, pays the per-node gather on each and one base-plus-per-byte network \
         gather over the pooled result bytes (waived at one node, where the router is \
         co-located). Per-node capacity is fixed: the x axis adds nodes, never channels."
            .into(),
    );
    result
}

fn knee_qps(curve: &FleetCurve) -> f64 {
    curve.knee().map_or(0.0, |p| p.offered_qps)
}

fn knee_note(curve: &FleetCurve) -> String {
    match curve.knee() {
        Some(p) => format!(
            "{} [{} node(s)]/{}: saturation {:.0} qps, knee at {:.0} qps (util {:.1})",
            curve.system,
            curve.nodes,
            curve.placement,
            curve.saturation_qps,
            p.offered_qps,
            p.utilization
        ),
        None => format!(
            "{} [{} node(s)]/{}: saturation {:.0} qps, no sustained point in sweep",
            curve.system, curve.nodes, curve.placement, curve.saturation_qps
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The highest sustained offered load of one (nodes, placement)
    /// series in the result table.
    fn knee_of(r: &ExperimentResult, nodes: usize, placement: &str) -> f64 {
        r.tables[0]
            .rows
            .iter()
            .filter(|row| row[0] == nodes.to_string() && row[1] == placement && row[8] == "yes")
            .map(|row| row[3].parse::<f64>().unwrap())
            .fold(0.0, f64::max)
    }

    #[test]
    fn fleet_experiment_scales_the_knee_with_nodes() {
        let r = fig_fleet(Scale::Quick);
        // 3 node counts x 2 placements x 3 load points.
        assert_eq!(r.tables[0].rows.len(), 18);
        let one = knee_of(&r, 1, "fleet-replicated(2)");
        let four = knee_of(&r, 4, "fleet-replicated(2)");
        assert!(one > 0.0, "1-node fleet must sustain its lightest load");
        // Half of linear scaling is the same bar the full-scale
        // acceptance sets (8x at 16 nodes).
        assert!(
            four >= 2.0 * one,
            "4-node knee {four} must be at least twice the 1-node knee {one}"
        );
    }

    #[test]
    fn replication_beats_pure_sharding_at_scale() {
        let r = fig_fleet(Scale::Quick);
        let repl = knee_of(&r, 4, "fleet-replicated(2)");
        let shard = knee_of(&r, 4, "fleet-sharded");
        let p99 = |placement: &str| {
            r.tables[0]
                .rows
                .iter()
                .rev()
                .find(|row| row[0] == "4" && row[1] == placement)
                .map(|row| row[7].parse::<f64>().unwrap())
                .unwrap()
        };
        assert!(
            repl > shard || p99("fleet-replicated(2)") < p99("fleet-sharded"),
            "replication must beat sharding: knees {repl} vs {shard}, \
             p99 {} vs {}",
            p99("fleet-replicated(2)"),
            p99("fleet-sharded")
        );
    }

    #[test]
    fn fleet_experiment_is_deterministic() {
        let a = fig_fleet(Scale::Quick);
        let b = fig_fleet(Scale::Quick);
        assert_eq!(a, b);
    }
}
