//! Section II characterization experiments (Figures 1, 4, 5, 6, 7).

use recnmp_cache::fa::FullyAssocLru;
use recnmp_cache::{CacheConfig, SetAssocCache};
use recnmp_model::footprint::{conv_footprint, fc_footprint, rnn_footprint, sls_footprint};
use recnmp_model::roofline::model_points;
use recnmp_model::{BandwidthModel, CpuPerfModel, RecModelKind, Roofline};
use recnmp_trace::{production_tables, CombTrace, PageMapper};
use recnmp_types::units::MIB;

use super::{ExperimentResult, Scale};
use crate::render::{f2, pct, x2, TextTable};

/// Figure 1(a): compute vs memory footprint of common operators.
pub fn fig01_footprint() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig01_footprint",
        "Figure 1(a): operator compute vs memory footprint, batch sweep",
    );
    let cfg = RecModelKind::Rm1Small.config();
    let mut t = TextTable::new(
        "operator footprints",
        &["operator", "batch", "GFLOPs", "mem footprint", "FLOP/byte"],
    );
    for batch in [1usize, 8, 64, 256] {
        for fp in [
            sls_footprint(&cfg, batch),
            fc_footprint(&cfg, batch),
            rnn_footprint(batch),
            conv_footprint(batch),
        ] {
            t.push_row(vec![
                fp.name.clone(),
                batch.to_string(),
                format!("{:.4}", fp.flops as f64 / 1e9),
                recnmp_types::units::human_bytes(fp.bytes),
                format!("{:.3}", fp.oi()),
            ]);
        }
    }
    result.tables.push(t);
    result.notes.push(
        "SLS: negligible compute against a table-scale footprint; dense operators invert \
         the profile — the Figure 1(a) contrast."
            .into(),
    );
    result
}

/// Figure 1(b): the roofline lift RecNMP provides.
pub fn fig01_roofline_lift() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig01_roofline_lift",
        "Figure 1(b): roofline lift from 8x internal bandwidth",
    );
    let base = Roofline::table1();
    let lifted = base.lifted(8.0);
    let mut t = TextTable::new(
        "attainable performance (GFLOP/s)",
        &[
            "operational intensity",
            "baseline roof",
            "RecNMP roof (8x)",
            "lift",
        ],
    );
    for oi in [0.0625, 0.25, 1.0, 4.0, 16.0, 64.0] {
        let b = base.attainable_gflops(oi);
        let l = lifted.attainable_gflops(oi);
        t.push_row(vec![format!("{oi}"), f2(b), f2(l), x2(l / b)]);
    }
    result.tables.push(t);
    result.notes.push(format!(
        "SLS sits at OI = 0.25 FLOP/B where the lift is the full 8.00x; the rooflines \
         meet at the compute bound ({} GFLOP/s).",
        base.peak_gflops
    ));
    result
}

/// Figure 4: operator-level latency breakdown across models and batches.
pub fn fig04_breakdown() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig04_breakdown",
        "Figure 4: inference latency and operator breakdown",
    );
    let perf = CpuPerfModel::table1();
    let mut t = TextTable::new(
        "operator breakdown (single model instance)",
        &["model", "batch", "latency (us)", "SLS %", "FC %", "other %"],
    );
    for kind in RecModelKind::ALL {
        for batch in [8usize, 64, 128, 256] {
            let bd = perf.breakdown(&kind.config(), batch);
            t.push_row(vec![
                kind.name().into(),
                batch.to_string(),
                f2(bd.total_us()),
                pct(bd.sls_fraction()),
                pct(bd.fc_us() / bd.total_us()),
                pct(bd.other_us / bd.total_us()),
            ]);
        }
    }
    result.tables.push(t);
    result.notes.push(
        "Paper anchors: SLS share 37.2% (RM1-small@8) to 73.5% (RM2-small@8); share \
         grows with batch; RM2-large is ~3.6x RM1-large."
            .into(),
    );
    result
}

/// Figure 5: roofline placement of RM1-large / RM2-large.
pub fn fig05_roofline() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig05_roofline",
        "Figure 5: roofline of RM1-large and RM2-large, batch sweep",
    );
    let perf = CpuPerfModel::table1();
    let roof = Roofline::table1();
    let mut t = TextTable::new(
        "roofline points",
        &[
            "point",
            "batch",
            "FLOP/byte",
            "GFLOP/s",
            "roof",
            "% of roof",
        ],
    );
    for kind in [RecModelKind::Rm1Large, RecModelKind::Rm2Large] {
        for p in model_points(&kind.config(), &[1, 16, 64, 256], &perf) {
            let bound = roof.attainable_gflops(p.oi);
            t.push_row(vec![
                p.name.clone(),
                p.batch.to_string(),
                format!("{:.3}", p.oi),
                f2(p.gflops),
                f2(bound),
                pct(p.gflops / bound),
            ]);
        }
    }
    result.tables.push(t);
    result.notes.push(
        "Paper anchor: models sit in the memory-bound region within 35.1% of the \
         theoretical bound at large batch."
            .into(),
    );
    result
}

/// Figure 6: bandwidth saturation with parallel SLS threads.
pub fn fig06_bw_saturation() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig06_bw_saturation",
        "Figure 6: memory bandwidth vs parallel SLS threads",
    );
    let bw = BandwidthModel::table1();
    let mut t = TextTable::new(
        "achieved bandwidth (GB/s)",
        &[
            "threads",
            "batch 16",
            "batch 64",
            "batch 128",
            "batch 256",
            "lat. mult @256",
        ],
    );
    for threads in [1usize, 2, 4, 8, 16, 24, 30, 36, 40] {
        t.push_row(vec![
            threads.to_string(),
            f2(bw.achieved_gbs(threads, 16)),
            f2(bw.achieved_gbs(threads, 64)),
            f2(bw.achieved_gbs(threads, 128)),
            f2(bw.achieved_gbs(threads, 256)),
            f2(bw.latency_multiplier(threads, 256)),
        ]);
    }
    result.tables.push(t);
    result.notes.push(format!(
        "Bounds: ideal {} GB/s, MLC empirical {} GB/s. Paper anchor: batch 256 x 30 \
         threads exceeds 67.4% of ideal (51.8 GB/s); achieved here: {:.1} GB/s.",
        bw.ideal_gbs,
        bw.empirical_gbs,
        bw.achieved_gbs(30, 256)
    ));
    result
}

/// Figure 7: temporal and spatial locality of embedding traces.
pub fn fig07_locality(scale: Scale) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig07_locality",
        "Figure 7: embedding trace locality (temporal and spatial sweeps)",
    );
    let total_lookups = scale.scaled(240_000, 1_600_000);

    // --- (a) temporal: capacity sweep at 64 B lines, 4-way LRU.
    let mut ta = TextTable::new(
        "(a) hit rate vs cache capacity (64 B lines, 4-way LRU)",
        &["trace", "8 MiB", "16 MiB", "32 MiB", "64 MiB"],
    );
    let combs: [(String, usize); 4] = [
        ("Comb-8".into(), 1),
        ("Comb-16".into(), 2),
        ("Comb-32".into(), 4),
        ("Comb-64".into(), 8),
    ];
    // Random worst case first.
    {
        let mut row = vec!["random".to_string()];
        for mib in [8u64, 16, 32, 64] {
            let rate = random_trace_hit_rate(mib * MIB, 64, total_lookups / 4);
            row.push(pct(rate));
        }
        ta.push_row(row);
    }
    for (name, mult) in &combs {
        let gens = production_tables(0x000f_1607);
        let per_table = total_lookups / (8 * mult);
        let comb = CombTrace::interleave(&gens, *mult, per_table, 7);
        let mut mapper = PageMapper::new(1 << 24, 77); // 64 GiB of frames
        let phys: Vec<u64> = comb
            .logical_addrs()
            .map(|l| mapper.translate(l).get())
            .collect();
        let mut row = vec![name.clone()];
        for mib in [8u64, 16, 32, 64] {
            let mut cache = SetAssocCache::new(CacheConfig::new(mib * MIB, 64, 4))
                .expect("valid cache geometry");
            row.push(pct(cache.run_trace(phys.iter().copied())));
        }
        ta.push_row(row);
    }
    result.tables.push(ta);

    // --- (b) spatial: line-size sweep at 16 MiB, Comb-8.
    let mut tb = TextTable::new(
        "(b) hit rate vs line size (16 MiB, Comb-8)",
        &["line", "4-way LRU", "fully associative"],
    );
    let gens = production_tables(0x000f_1607);
    let comb = CombTrace::interleave(&gens, 1, total_lookups / 8, 7);
    let mut mapper = PageMapper::new(1 << 24, 77);
    let phys: Vec<u64> = comb
        .logical_addrs()
        .map(|l| mapper.translate(l).get())
        .collect();
    for line in [64u64, 128, 256, 512] {
        let mut sa =
            SetAssocCache::new(CacheConfig::new(16 * MIB, line, 4)).expect("valid cache geometry");
        let mut fa = FullyAssocLru::new(16 * MIB, line).expect("valid cache geometry");
        tb.push_row(vec![
            format!("{line} B"),
            pct(sa.run_trace(phys.iter().copied())),
            pct(fa.run_trace(phys.iter().copied())),
        ]);
    }
    result.tables.push(tb);
    result.notes.push(
        "Paper anchors: random <5%; production combinations 20-60%, increasing with \
         capacity, decreasing with line size (also fully-associative) — no spatial \
         locality."
            .into(),
    );
    result
}

fn random_trace_hit_rate(capacity: u64, line: u64, lookups: usize) -> f64 {
    use rand::RngCore;
    let mut cache = SetAssocCache::new(CacheConfig::new(capacity, line, 4)).expect("valid");
    let mut rng = recnmp_types::rng::DetRng::seed(0xabcd);
    // 8 tables x 64 MB of random lookups.
    let span = 8 * 64_000_000u64;
    let mut hits = 0u64;
    for _ in 0..lookups {
        let addr = (rng.next_u64() % (span / 64)) * 64;
        if cache.access(addr).is_hit() {
            hits += 1;
        }
    }
    hits as f64 / lookups as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_has_all_operators() {
        let r = fig01_footprint();
        assert_eq!(r.tables[0].rows.len(), 16);
    }

    #[test]
    fn fig01_lift_is_8x_in_memory_region() {
        let r = fig01_roofline_lift();
        assert_eq!(r.tables[0].rows[1][3], "8.00x"); // OI = 0.25
    }

    #[test]
    fn fig04_has_16_rows() {
        let r = fig04_breakdown();
        assert_eq!(r.tables[0].rows.len(), 16);
    }

    #[test]
    fn fig06_reports_saturation() {
        let r = fig06_bw_saturation();
        assert_eq!(r.tables[0].rows.len(), 9);
    }

    #[test]
    fn fig07_temporal_hit_rates_increase_with_capacity() {
        let r = fig07_locality(Scale::Quick);
        // Comb-8 row: hit rate at 64 MiB above hit rate at 8 MiB.
        let comb8 = &r.tables[0].rows[1];
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        assert!(parse(&comb8[4]) > parse(&comb8[1]), "{comb8:?}");
        // Random row stays under 5%.
        let rand = &r.tables[0].rows[0];
        assert!(parse(&rand[4]) < 5.0, "{rand:?}");
    }

    #[test]
    fn fig07_spatial_hit_rates_decrease_with_line_size() {
        let r = fig07_locality(Scale::Quick);
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let rows = &r.tables[1].rows;
        assert!(
            parse(&rows[3][1]) < parse(&rows[0][1]),
            "set-assoc: {rows:?}"
        );
        assert!(
            parse(&rows[3][2]) < parse(&rows[0][2]),
            "fully-assoc: {rows:?}"
        );
    }
}
