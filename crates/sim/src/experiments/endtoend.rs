//! End-to-end experiments (Figures 17 and 18).

use recnmp::RecNmpConfig;
use recnmp_model::{CpuPerfModel, RecModelKind};

use super::{ExperimentResult, Scale};
use crate::colocation::ColocationModel;
use crate::render::{f2, pct, x2, TextTable};
use crate::speedup::SpeedupEngine;
use crate::workload::TraceKind;

/// Figure 17: co-located TopFC latency, baseline vs RecNMP.
pub fn fig17_fc_colocation() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig17_fc_colocation",
        "Figure 17: TopFC latency under model co-location",
    );
    let perf = CpuPerfModel::table1();
    for kind in [RecModelKind::Rm2Small, RecModelKind::Rm2Large] {
        let cfg = kind.config();
        let mut t = TextTable::new(
            format!("{} TopFC (batch 64)", kind.name()),
            &[
                "co-located",
                "pooling",
                "baseline (us)",
                "RecNMP (us)",
                "RecNMP gain",
            ],
        );
        for co in [1usize, 2, 4, 8] {
            for pooling in [20usize, 80] {
                let mut c = cfg.clone();
                c.pooling = pooling;
                let base = perf.breakdown_colocated(&c, 64, co, false).top_fc_us;
                let nmp = perf.breakdown_colocated(&c, 64, co, true).top_fc_us;
                t.push_row(vec![
                    co.to_string(),
                    pooling.to_string(),
                    f2(base),
                    f2(nmp),
                    pct(1.0 - nmp / base),
                ]);
            }
        }
        result.tables.push(t);
    }
    result.notes.push(
        "Paper anchors: offloading SLS relieves 12-30% of co-located TopFC latency for \
         LLC-resident weights (RM2), ~4% for L2-resident FCs."
            .into(),
    );
    result
}

/// SLS memory-latency speedups per rank count, measured by the
/// cycle-level engine with full optimizations (feeds Figure 18).
pub fn measured_sls_speedups(scale: Scale) -> [(u8, u8, f64); 3] {
    let rounds = scale.scaled(2, 6);
    let batch = scale.scaled(32, 32);
    let e = SpeedupEngine::with_workload(TraceKind::Production, 8, rounds, batch, 0x18);
    let mut out = [(1u8, 2u8, 0.0f64), (2, 2, 0.0), (4, 2, 0.0)];
    for slot in &mut out {
        let mut cfg = RecNmpConfig::optimized(slot.0, slot.1);
        cfg.refresh = false;
        let cmp = e.compare(&cfg).expect("valid config");
        slot.2 = cmp.speedup();
    }
    out
}

/// Figure 18: end-to-end speedup and co-location trade-offs.
pub fn fig18_end2end(scale: Scale) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig18_end2end",
        "Figure 18: end-to-end model speedup and co-location trade-off",
    );
    let perf = CpuPerfModel::table1();
    let speedups = measured_sls_speedups(scale);

    // (a) model x rank count at batch 256.
    let mut ta = TextTable::new(
        "(a) end-to-end speedup (batch 256)",
        &["model", "2-rank", "4-rank", "8-rank"],
    );
    for kind in RecModelKind::ALL {
        let cfg = kind.config();
        let mut row = vec![kind.name().to_string()];
        for (_, _, sls) in speedups {
            row.push(x2(perf.end_to_end_speedup(&cfg, 256, 1, sls)));
        }
        ta.push_row(row);
    }
    result.tables.push(ta);

    // (b) batch sweep at 8 ranks.
    let sls8 = speedups[2].2;
    let mut tb = TextTable::new(
        "(b) end-to-end speedup vs batch size (8-rank)",
        &["model", "batch 8", "batch 64", "batch 128", "batch 256"],
    );
    for kind in RecModelKind::ALL {
        let cfg = kind.config();
        let mut row = vec![kind.name().to_string()];
        for batch in [8usize, 64, 128, 256] {
            row.push(x2(perf.end_to_end_speedup(&cfg, batch, 1, sls8)));
        }
        tb.push_row(row);
    }
    result.tables.push(tb);

    // (c) co-location latency/throughput, host vs RecNMP-opt.
    let colo = ColocationModel::table1();
    for kind in [RecModelKind::Rm1Large, RecModelKind::Rm2Small] {
        let cfg = kind.config();
        let mut tc = TextTable::new(
            format!("(c) co-location trade-off, {} (batch 256)", kind.name()),
            &[
                "co-located",
                "host lat (ms)",
                "host qps",
                "NMP lat (ms)",
                "NMP qps",
                "speedup",
            ],
        );
        let host = colo.curve(&cfg, 256, 8, TraceKind::Production, None);
        let nmp = colo.curve(&cfg, 256, 8, TraceKind::Production, Some(sls8));
        for (h, n) in host.iter().zip(&nmp) {
            tc.push_row(vec![
                h.co_located.to_string(),
                f2(h.latency_us / 1000.0),
                format!("{:.0}", h.throughput_qps),
                f2(n.latency_us / 1000.0),
                format!("{:.0}", n.throughput_qps),
                x2(h.latency_us / n.latency_us),
            ]);
        }
        result.tables.push(tc);
    }
    result.notes.push(format!(
        "Measured SLS speedups feeding this figure: 2-rank {:.2}x, 4-rank {:.2}x, \
         8-rank {:.2}x. Paper anchors: end-to-end up to 4.2x (RM2-large, 8-rank); \
         co-located RM1-large 2.8-3.5x, RM2-small 3.2-4.0x.",
        speedups[0].2, speedups[1].2, speedups[2].2
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_x(s: &str) -> f64 {
        s.trim_end_matches('x').parse().unwrap()
    }

    #[test]
    fn fig17_relief_band() {
        let r = fig17_fc_colocation();
        // RM2-large, co=8, pooling 80 row: relief within the paper band.
        let big = &r.tables[1].rows;
        let last = big.last().unwrap();
        let relief: f64 = last[4].trim_end_matches('%').parse().unwrap();
        assert!((8.0..35.0).contains(&relief), "{relief}");
    }

    #[test]
    fn fig18a_speedups_ordered_by_rank_count() {
        let r = fig18_end2end(Scale::Quick);
        for row in &r.tables[0].rows {
            let two = parse_x(&row[1]);
            let eight = parse_x(&row[3]);
            assert!(eight > two, "{row:?}");
            assert!(eight > 1.0 && eight < 8.0, "{row:?}");
        }
    }

    #[test]
    fn fig18b_speedup_grows_with_batch() {
        let r = fig18_end2end(Scale::Quick);
        for row in &r.tables[1].rows {
            assert!(parse_x(&row[4]) >= parse_x(&row[1]) * 0.95, "{row:?}");
        }
    }

    #[test]
    fn fig18c_nmp_dominates() {
        let r = fig18_end2end(Scale::Quick);
        for table in &r.tables[2..4] {
            for row in &table.rows {
                assert!(parse_x(&row[5]) > 1.0, "{row:?}");
            }
        }
    }
}
