//! Table I and Table II reproductions.

use recnmp::physical::{PuPhysical, CHAMELEON_PU};
use recnmp::RecNmpConfig;
use recnmp_dram::{DdrTiming, EnergyParams};
use recnmp_model::{BandwidthModel, CpuSpec};

use super::ExperimentResult;
use crate::render::{f2, pct, TextTable};

/// Table I: system parameters, as encoded in the library defaults.
pub fn tab01_config() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "tab01_config",
        "Table I: system parameters and configurations (library defaults)",
    );

    let cpu = CpuSpec::table1();
    let mut tc = TextTable::new("real-system configuration", &["parameter", "value"]);
    tc.push_row(vec!["cores".into(), cpu.cores.to_string()]);
    tc.push_row(vec!["frequency".into(), format!("{} GHz", cpu.freq_ghz)]);
    tc.push_row(vec![
        "peak compute".into(),
        format!("{} GFLOP/s", cpu.peak_gflops),
    ]);
    tc.push_row(vec![
        "L2 / LLC".into(),
        format!(
            "{} / {}",
            recnmp_types::units::human_bytes(cpu.l2_bytes),
            recnmp_types::units::human_bytes(cpu.llc_bytes)
        ),
    ]);
    let bw = BandwidthModel::table1();
    tc.push_row(vec![
        "DRAM bandwidth (ideal/MLC)".into(),
        format!("{} / {} GB/s", bw.ideal_gbs, bw.empirical_gbs),
    ]);
    result.tables.push(tc);

    let t = DdrTiming::ddr4_2400();
    let mut tt = TextTable::new("DDR4-2400 timing (cycles)", &["parameter", "value"]);
    for (name, v) in [
        ("tRC", t.t_rc),
        ("tRCD", t.t_rcd),
        ("tCL", t.t_cl),
        ("tRP", t.t_rp),
        ("tBL", t.t_bl),
        ("tCCD_S", t.t_ccd_s),
        ("tCCD_L", t.t_ccd_l),
        ("tRRD_S", t.t_rrd_s),
        ("tRRD_L", t.t_rrd_l),
        ("tFAW", t.t_faw),
    ] {
        tt.push_row(vec![name.into(), v.to_string()]);
    }
    result.tables.push(tt);

    let e = EnergyParams::table1();
    let mut te = TextTable::new("latency/energy parameters", &["parameter", "value"]);
    te.push_row(vec!["DDR activate".into(), format!("{} nJ", e.act_nj)]);
    te.push_row(vec![
        "DDR RD/WR".into(),
        format!("{} pJ/b", e.rdwr_pj_per_bit),
    ]);
    te.push_row(vec![
        "off-chip IO".into(),
        format!("{} pJ/b", e.io_pj_per_bit),
    ]);
    te.push_row(vec!["RankCache access".into(), "1 cycle, 50 pJ".into()]);
    te.push_row(vec![
        "FP32 add / mult".into(),
        "3 cycles, 7.89 pJ / 4 cycles, 25.2 pJ".into(),
    ]);
    result.tables.push(te);
    result
}

/// Table II: RecNMP PU area/power vs Chameleon.
pub fn tab02_overhead() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "tab02_overhead",
        "Table II: RecNMP design overhead (40 nm, 250 MHz)",
    );
    let base = PuPhysical::estimate(&RecNmpConfig::with_ranks(1, 2));
    let opt = PuPhysical::estimate(&RecNmpConfig::optimized(1, 2));
    let mut t = TextTable::new(
        "per-PU overhead",
        &[
            "design",
            "area (mm2)",
            "power (mW)",
            "vs Chameleon area",
            "vs Chameleon power",
        ],
    );
    for (name, p) in [("RecNMP-base", base), ("RecNMP-opt", opt)] {
        t.push_row(vec![
            name.into(),
            f2(p.area_mm2),
            f2(p.power_mw),
            pct(p.area_mm2 / CHAMELEON_PU.area_mm2),
            pct(p.power_mw / CHAMELEON_PU.power_mw),
        ]);
    }
    t.push_row(vec![
        CHAMELEON_PU.name.into(),
        f2(CHAMELEON_PU.area_mm2),
        f2(CHAMELEON_PU.power_mw),
        pct(1.0),
        pct(1.0),
    ]);
    result.tables.push(t);
    result.notes.push(format!(
        "RecNMP-opt occupies {:.1}% of a 100 mm2 buffer chip and {:.1}% of a 13 W DIMM \
         budget (paper: 'small overhead accommodated without DRAM device changes').",
        100.0 * opt.buffer_chip_fraction(),
        100.0 * opt.dimm_power_fraction()
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab01_lists_all_timing_rows() {
        let r = tab01_config();
        assert_eq!(r.tables[1].rows.len(), 10);
    }

    #[test]
    fn tab02_matches_paper_totals() {
        let r = tab02_overhead();
        let rows = &r.tables[0].rows;
        assert_eq!(rows[0][1], "0.34");
        assert_eq!(rows[0][2], "151.30");
        assert_eq!(rows[1][1], "0.54");
        assert_eq!(rows[1][2], "184.20");
    }
}
