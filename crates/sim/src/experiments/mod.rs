//! One entry point per table and figure of the paper's evaluation.
//!
//! Each experiment regenerates the rows/series of its figure from the
//! simulators in this workspace and returns them as renderable tables.
//! `EXPERIMENTS.md` records these outputs next to the paper's numbers.

mod characterization;
mod endtoend;
mod fleet;
mod nmp;
mod resilience;
mod serving;
mod storage;
mod tables;

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::render::TextTable;

/// How much work an experiment run does.
///
/// `Quick` keeps traces small enough for tests and benches; `Full` uses
/// the trace lengths recorded in `EXPERIMENTS.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Small traces (seconds): tests, benches, smoke runs.
    Quick,
    /// Full traces (minutes): the recorded reproduction.
    Full,
}

impl Scale {
    /// Scales a quick-mode count up for full mode.
    pub fn scaled(self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// The output of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment id (`fig15_opt`, `tab02_overhead`, ...).
    pub id: String,
    /// Human-readable title naming the paper artifact.
    pub title: String,
    /// Result tables.
    pub tables: Vec<TextTable>,
    /// Free-form observations (paper-vs-measured commentary).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    pub(crate) fn new(id: &str, title: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }
}

impl fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {} — {}", self.id, self.title)?;
        for t in &self.tables {
            writeln!(f, "\n{t}")?;
        }
        for n in &self.notes {
            writeln!(f, "note: {n}")?;
        }
        Ok(())
    }
}

/// All experiment ids, in paper order (fig19, fig_capacity, fig_fleet,
/// fig_cache_serving and fig_resilience are this reproduction's own
/// extensions, numbered or named past the paper's last figure).
pub const IDS: [&str; 20] = [
    "fig01_footprint",
    "fig01_roofline_lift",
    "fig04_breakdown",
    "fig05_roofline",
    "fig06_bw_saturation",
    "fig07_locality",
    "fig12_hitrate",
    "fig14_scaling",
    "fig15_opt",
    "fig16_comparison",
    "fig17_fc_colocation",
    "fig18_end2end",
    "fig18_tail_latency",
    "fig19_placement",
    "fig_capacity",
    "fig_fleet",
    "fig_cache_serving",
    "fig_resilience",
    "tab01_config",
    "tab02_overhead",
];

/// Runs one experiment by id. Returns `None` for unknown ids.
pub fn run(id: &str, scale: Scale) -> Option<ExperimentResult> {
    let result = match id {
        "fig01_footprint" => characterization::fig01_footprint(),
        "fig01_roofline_lift" => characterization::fig01_roofline_lift(),
        "fig04_breakdown" => characterization::fig04_breakdown(),
        "fig05_roofline" => characterization::fig05_roofline(),
        "fig06_bw_saturation" => characterization::fig06_bw_saturation(),
        "fig07_locality" => characterization::fig07_locality(scale),
        "fig12_hitrate" => nmp::fig12_hitrate(scale),
        "fig14_scaling" => nmp::fig14_scaling(scale),
        "fig15_opt" => nmp::fig15_opt(scale),
        "fig16_comparison" => nmp::fig16_comparison(scale),
        "fig17_fc_colocation" => endtoend::fig17_fc_colocation(),
        "fig18_end2end" => endtoend::fig18_end2end(scale),
        "fig18_tail_latency" => serving::fig18_tail_latency(scale),
        "fig19_placement" => serving::fig19_placement(scale),
        "fig_capacity" => storage::fig_capacity(scale),
        "fig_fleet" => fleet::fig_fleet(scale),
        "fig_cache_serving" => serving::fig_cache_serving(scale),
        "fig_resilience" => resilience::fig_resilience(scale),
        "tab01_config" => tables::tab01_config(),
        "tab02_overhead" => tables::tab02_overhead(),
        _ => return None,
    };
    Some(result)
}

/// Runs every experiment in paper order.
pub fn run_all(scale: Scale) -> Vec<ExperimentResult> {
    IDS.iter()
        .map(|id| run(id, scale).expect("registered id"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run("fig99_nope", Scale::Quick).is_none());
    }

    #[test]
    fn ids_are_unique() {
        let set: std::collections::HashSet<&str> = IDS.iter().copied().collect();
        assert_eq!(set.len(), IDS.len());
    }

    #[test]
    fn scale_selector() {
        assert_eq!(Scale::Quick.scaled(2, 10), 2);
        assert_eq!(Scale::Full.scaled(2, 10), 10);
    }
}
