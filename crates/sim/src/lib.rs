//! End-to-end RecNMP system simulation and the experiment harness.
//!
//! This crate glues the substrates together and regenerates every table
//! and figure of the paper's evaluation:
//!
//! * [`workload`] — shared logical→physical layout so the host baseline,
//!   the comparator NMP systems and RecNMP serve *identical* address
//!   traces;
//! * [`speedup`] — the Figure 14/15/16 engine: run the same SLS workload
//!   through the DRAM baseline and a RecNMP configuration and report the
//!   memory-latency speedup;
//! * [`colocation`] — the Figure 17/18 layer: co-located model inference
//!   latency/throughput built on the calibrated CPU model and the
//!   cycle-level SLS results;
//! * [`experiments`] — one entry point per table/figure
//!   (`fig01_footprint` … `tab02_overhead`), each returning renderable
//!   tables recorded in `EXPERIMENTS.md`;
//! * [`render`] — plain-text table rendering shared by the `repro` binary
//!   and the docs.
//!
//! # Examples
//!
//! ```no_run
//! // Regenerate the Figure 15 optimization-breakdown experiment.
//! let result = recnmp_sim::experiments::run("fig15_opt", recnmp_sim::Scale::Quick)
//!     .expect("known experiment id");
//! println!("{result}");
//! ```

pub mod colocation;
pub mod experiments;
pub mod render;
pub mod speedup;
pub mod workload;

pub use experiments::{ExperimentResult, Scale};
pub use render::TextTable;
pub use speedup::{SlsComparison, SpeedupEngine};
pub use workload::{SlsWorkload, TableLayout, TraceKind};
