//! End-to-end RecNMP system simulation and the experiment harness.
//!
//! This crate glues the substrates together and regenerates every table
//! and figure of the paper's evaluation:
//!
//! * [`workload`] — shared logical→physical layout so the host baseline,
//!   the comparator NMP systems and RecNMP serve *identical* address
//!   traces (one [`SlsTrace`](recnmp_backend::SlsTrace) per comparison);
//! * [`speedup`] — the Figure 14/15/16 engine: run the same SLS trace
//!   through any pair of [`SlsBackend`](recnmp_backend::SlsBackend)s and
//!   report the memory-latency speedup. The engine has no
//!   backend-specific branches, so new comparators (a cluster, a future
//!   system) drop in unchanged;
//! * [`colocation`] — the Figure 17/18 layer: co-located model inference
//!   latency/throughput built on the calibrated CPU model and the
//!   cycle-level SLS results;
//! * [`serving`] — the query-serving subsystem: open-loop Poisson/uniform
//!   load generation, queued dispatch (FIFO / round-robin /
//!   least-outstanding, optional batch coalescing) or **sharded
//!   scatter/gather** over a table-placement plan (each query fans out
//!   to the channels owning its tables and completes at its slowest
//!   shard plus a host gather cost), per-query p50/p95/p99 latency, and
//!   throughput–latency sweeps with saturation-knee detection, shared
//!   between the `serve_sweep` binary and the experiment harness;
//! * [`experiments`] — one entry point per table/figure
//!   (`fig01_footprint` … `tab02_overhead`), each returning renderable
//!   tables recorded in `EXPERIMENTS.md`;
//! * [`render`] — plain-text table rendering shared by the `repro` binary
//!   and the docs.
//!
//! # Examples
//!
//! Compare two backends on one shared trace:
//!
//! ```
//! use recnmp::{RecNmpConfig, RecNmpSystem};
//! use recnmp_baselines::HostBaseline;
//! use recnmp_sim::{SpeedupEngine, TraceKind};
//!
//! # fn main() -> Result<(), recnmp_types::ConfigError> {
//! let engine = SpeedupEngine::with_workload(TraceKind::Production, 2, 1, 4, 7);
//! let mut config = RecNmpConfig::with_ranks(1, 2);
//! config.refresh = false;
//! let trace = engine.trace_for(&config);
//!
//! // Matched comparison: both systems share the refresh setting.
//! let mut dram_cfg = recnmp_dram::DramConfig::with_ranks(config.dimms, config.ranks_per_dimm);
//! dram_cfg.refresh = config.refresh;
//! let mut host = HostBaseline::with_config(dram_cfg)?;
//! let mut nmp = RecNmpSystem::new(config)?;
//! let cmp = engine.compare_backends(&mut host, &mut nmp, &trace);
//! assert!(cmp.speedup() > 1.0);
//! # Ok(())
//! # }
//! ```
//!
//! Regenerate a paper artifact:
//!
//! ```no_run
//! // Regenerate the Figure 15 optimization-breakdown experiment.
//! let result = recnmp_sim::experiments::run("fig15_opt", recnmp_sim::Scale::Quick)
//!     .expect("known experiment id");
//! println!("{result}");
//! ```

pub mod colocation;
pub mod experiments;
pub mod render;
pub mod serving;
pub mod speedup;
pub mod workload;

pub use experiments::{ExperimentResult, Scale};
pub use render::TextTable;
pub use serving::faults;
pub use serving::fleet;
pub use serving::{DispatchPolicy, LatencySummary, ServingConfig, ServingReport};
pub use speedup::{SlsComparison, SpeedupEngine};
pub use workload::{SlsWorkload, TableLayout, TraceKind};
