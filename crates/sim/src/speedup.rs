//! The SLS memory-latency comparison engine (Figures 14, 15, 16).
//!
//! One [`SpeedupEngine`] owns a workload and serves it, from identical
//! physical traces, to any [`SlsBackend`] — the DRAM host baseline,
//! RecNMP configurations, the DIMM-level NMP comparators, multi-channel
//! clusters, and whatever comes next — reporting the unified
//! [`RunReport`] for each. The engine has no backend-specific logic:
//! every run goes through [`SpeedupEngine::run_backend`].

use recnmp::{compile_trace, ExecutionMode, RecNmpConfig, RecNmpSystem};
use recnmp_backend::{RunReport, SlsBackend, SlsTrace};
use recnmp_baselines::{Chameleon, HostBaseline, TensorDimm};
use recnmp_dram::DramConfig;
use recnmp_types::{ConfigError, PhysAddr};
use serde::{Deserialize, Serialize};

use crate::workload::{SlsWorkload, TableLayout, TraceKind};

/// Two systems' reports on the same trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlsComparison {
    /// The baseline system's report (conventionally the host).
    pub baseline: RunReport,
    /// The accelerated system's report (conventionally RecNMP).
    pub nmp: RunReport,
}

impl SlsComparison {
    /// Baseline cycles per lookup.
    pub fn baseline_cpl(&self) -> f64 {
        self.baseline.cycles_per_lookup()
    }

    /// Accelerated-system cycles per lookup.
    pub fn nmp_cpl(&self) -> f64 {
        self.nmp.cycles_per_lookup()
    }

    /// Memory-latency speedup of the accelerated system over the baseline.
    pub fn speedup(&self) -> f64 {
        if self.nmp_cpl() == 0.0 {
            0.0
        } else {
            self.baseline_cpl() / self.nmp_cpl()
        }
    }
}

/// Builds matched SLS traces and runs them through [`SlsBackend`]s.
#[derive(Debug)]
pub struct SpeedupEngine {
    workload: SlsWorkload,
    seed: u64,
}

impl SpeedupEngine {
    /// Creates an engine over a workload.
    pub fn new(workload: SlsWorkload, seed: u64) -> Self {
        Self { workload, seed }
    }

    /// Convenience constructor: `tables` tables, `rounds` windows of
    /// `batch_size` poolings of 80.
    pub fn with_workload(
        kind: TraceKind,
        tables: usize,
        rounds: usize,
        batch_size: usize,
        seed: u64,
    ) -> Self {
        Self::new(
            SlsWorkload::build(kind, tables, rounds, batch_size, 80, seed),
            seed,
        )
    }

    /// The workload.
    pub fn workload(&self) -> &SlsWorkload {
        &self.workload
    }

    fn capacity_for(config: &RecNmpConfig) -> u64 {
        config.geometry().capacity_bytes()
    }

    /// The shared physical trace for a comparison at `config`'s geometry:
    /// tables laid out contiguously in logical space, pages mapped
    /// randomly. Every backend in one comparison serves this same trace.
    pub fn trace_for(&self, config: &RecNmpConfig) -> SlsTrace {
        let mut layout = TableLayout::random(
            &self.workload.specs,
            Self::capacity_for(config),
            self.seed ^ 0xfeed,
        );
        self.workload.trace(&mut |t, r| layout.translate(t, r))
    }

    /// The page-colored variant of the shared trace (Figure 14(a)): each
    /// table's pages are pinned to the rank matching its color.
    pub fn colored_trace_for(&self, config: &RecNmpConfig) -> SlsTrace {
        let ranks = config.total_ranks() as u32;
        // Color = the rank a page's bursts decode to (a 4 KiB page spans
        // 64 columns of one row, hence a single rank even under the XOR
        // mapping). Page-colored OS allocation needs a capture-free
        // function, so pick the decoder matching the rank count.
        fn decode_rank<const R: u8>(frame: u64) -> u32 {
            recnmp_dram::AddressMapping::SkylakeXor
                .decode(
                    PhysAddr::new(frame * 4096),
                    &recnmp_dram::address::Geometry::ddr4_8gb_x8(R),
                )
                .rank as u32
        }
        let color_of: fn(u64) -> u32 = match config.total_ranks() {
            1 => decode_rank::<1>,
            2 => decode_rank::<2>,
            4 => decode_rank::<4>,
            8 => decode_rank::<8>,
            _ => decode_rank::<2>,
        };
        let mut layout = crate::workload::TableLayout::colored(
            &self.workload.specs,
            Self::capacity_for(config),
            self.seed ^ 0xc01c,
            color_of,
            ranks,
        );
        self.workload.trace(&mut |t, r| layout.translate(t, r))
    }

    /// The flat physical lookup trace (for external consumers like energy
    /// accounting and locality analysis).
    pub fn flat_trace_for(&self, config: &RecNmpConfig) -> Vec<PhysAddr> {
        self.trace_for(config).flat()
    }

    /// Runs any backend on a trace. This is the single execution path of
    /// the engine — no backend-specific branches exist downstream of it.
    pub fn run_backend(&self, backend: &mut dyn SlsBackend, trace: &SlsTrace) -> RunReport {
        backend.run(trace)
    }

    /// Runs two backends on the same trace and pairs their reports.
    pub fn compare_backends(
        &self,
        baseline: &mut dyn SlsBackend,
        accelerated: &mut dyn SlsBackend,
        trace: &SlsTrace,
    ) -> SlsComparison {
        SlsComparison {
            baseline: self.run_backend(baseline, trace),
            nmp: self.run_backend(accelerated, trace),
        }
    }

    /// Runs the host baseline on the shared trace, with a channel matching
    /// `config`'s DIMM/rank counts.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid configurations.
    pub fn run_host(&self, config: &RecNmpConfig) -> Result<RunReport, ConfigError> {
        let mut dram_cfg = DramConfig::with_ranks(config.dimms, config.ranks_per_dimm);
        dram_cfg.refresh = config.refresh;
        let mut host = HostBaseline::with_config(dram_cfg)?;
        Ok(self.run_backend(&mut host, &self.trace_for(config)))
    }

    /// Runs a RecNMP configuration on the shared trace.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid configurations.
    pub fn run_nmp(&self, config: &RecNmpConfig) -> Result<RunReport, ConfigError> {
        let mut sys = RecNmpSystem::new(config.clone())?;
        Ok(self.run_backend(&mut sys, &self.trace_for(config)))
    }

    /// Runs RecNMP with page-colored table placement (Figure 14(a)).
    ///
    /// Page coloring pays off only with task-level parallelism: packets
    /// from different tables run on different ranks simultaneously
    /// (paper, Section V-A), hence the overlapped execution mode.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid configurations.
    pub fn run_nmp_colored(&self, config: &RecNmpConfig) -> Result<RunReport, ConfigError> {
        let mut overlapped = config.clone();
        overlapped.execution = ExecutionMode::Overlapped;
        let mut sys = RecNmpSystem::new(overlapped)?;
        Ok(self.run_backend(&mut sys, &self.colored_trace_for(config)))
    }

    /// Runs TensorDIMM on the shared trace.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid configurations.
    pub fn run_tensordimm(&self, config: &RecNmpConfig) -> Result<RunReport, ConfigError> {
        let mut td = TensorDimm::with_refresh(config.dimms, config.ranks_per_dimm, config.refresh)?;
        Ok(self.run_backend(&mut td, &self.trace_for(config)))
    }

    /// Runs Chameleon on the shared trace.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid configurations.
    pub fn run_chameleon(&self, config: &RecNmpConfig) -> Result<RunReport, ConfigError> {
        let mut ch = Chameleon::with_refresh(config.dimms, config.ranks_per_dimm, config.refresh)?;
        Ok(self.run_backend(&mut ch, &self.trace_for(config)))
    }

    /// Full host-vs-RecNMP comparison: one shared trace, built once,
    /// served to both backends.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid configurations.
    pub fn compare(&self, config: &RecNmpConfig) -> Result<SlsComparison, ConfigError> {
        let trace = self.trace_for(config);
        let mut dram_cfg = DramConfig::with_ranks(config.dimms, config.ranks_per_dimm);
        dram_cfg.refresh = config.refresh;
        let mut host = HostBaseline::with_config(dram_cfg)?;
        let mut sys = RecNmpSystem::new(config.clone())?;
        Ok(self.compare_backends(&mut host, &mut sys, &trace))
    }

    /// Compiles the shared trace into `config`'s scheduled packet stream
    /// (exposed for packet-level experiments). Uses the same geometry and
    /// mapping the `SlsBackend` execution path derives from `config`.
    pub fn packets_for(&self, config: &RecNmpConfig) -> Vec<recnmp::NmpPacket> {
        compile_trace(
            config,
            config.geometry(),
            config.mapping(),
            &self.trace_for(config),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp::cluster::{RecNmpCluster, RecNmpClusterConfig};

    fn quiet(mut cfg: RecNmpConfig) -> RecNmpConfig {
        cfg.refresh = false;
        cfg
    }

    fn engine() -> SpeedupEngine {
        SpeedupEngine::with_workload(TraceKind::Production, 4, 1, 8, 11)
    }

    #[test]
    fn nmp_beats_host_on_8_ranks() {
        let e = engine();
        let cmp = e.compare(&quiet(RecNmpConfig::with_ranks(4, 2))).unwrap();
        assert!(
            cmp.speedup() > 2.0,
            "8-rank RecNMP-base speedup only {:.2}",
            cmp.speedup()
        );
        assert!(cmp.speedup() < 10.0, "{:.2}", cmp.speedup());
    }

    #[test]
    fn optimized_beats_base() {
        let e = engine();
        let base = e.compare(&quiet(RecNmpConfig::with_ranks(4, 2))).unwrap();
        let opt = e.compare(&quiet(RecNmpConfig::optimized(4, 2))).unwrap();
        assert!(
            opt.speedup() > base.speedup(),
            "base {:.2} vs opt {:.2}",
            base.speedup(),
            opt.speedup()
        );
    }

    #[test]
    fn recnmp_beats_dimm_level_comparators() {
        let e = engine();
        let cfg = quiet(RecNmpConfig::optimized(4, 2));
        let nmp = e.run_nmp(&cfg).unwrap();
        let td = e.run_tensordimm(&cfg).unwrap();
        let ch = e.run_chameleon(&cfg).unwrap();
        assert!(nmp.cycles_per_lookup() < td.cycles_per_lookup());
        assert!(td.cycles_per_lookup() < ch.cycles_per_lookup());
    }

    #[test]
    fn page_coloring_reaches_near_ideal_throughput() {
        // 8 tables on 8 ranks: coloring pins one table per rank and the
        // overlapped execution keeps all ranks busy — faster than the
        // serial-packet random layout (paper: 7.35x vs lower).
        let e = SpeedupEngine::with_workload(TraceKind::Production, 8, 1, 8, 13);
        let cfg = quiet(RecNmpConfig::with_ranks(4, 2));
        let random = e.run_nmp(&cfg).unwrap();
        let colored = e.run_nmp_colored(&cfg).unwrap();
        assert!(
            colored.total_cycles < random.total_cycles,
            "random {} vs colored {}",
            random.total_cycles,
            colored.total_cycles
        );
    }

    #[test]
    fn generic_backend_path_matches_named_helpers() {
        // run_host/run_nmp are thin wrappers over run_backend: driving the
        // backends directly through the trait gives identical reports.
        let e = engine();
        let cfg = quiet(RecNmpConfig::with_ranks(2, 2));
        let trace = e.trace_for(&cfg);

        let mut dram_cfg = DramConfig::with_ranks(cfg.dimms, cfg.ranks_per_dimm);
        dram_cfg.refresh = cfg.refresh;
        let mut host = HostBaseline::with_config(dram_cfg).unwrap();
        let mut sys = RecNmpSystem::new(cfg.clone()).unwrap();
        let cmp = e.compare_backends(&mut host, &mut sys, &trace);

        assert_eq!(cmp.baseline, e.run_host(&cfg).unwrap());
        assert_eq!(cmp.nmp, e.run_nmp(&cfg).unwrap());
    }

    #[test]
    fn cluster_drops_into_the_engine() {
        // A backend the engine has no named helper for runs through the
        // same generic path — the point of the SlsBackend redesign.
        let e = SpeedupEngine::with_workload(TraceKind::Production, 8, 1, 8, 29);
        let cfg = quiet(RecNmpConfig::with_ranks(1, 2));
        let trace = e.trace_for(&cfg);
        let mut cluster = RecNmpCluster::new(RecNmpClusterConfig::new(2, cfg.clone())).unwrap();
        let report = e.run_backend(&mut cluster, &trace);
        assert_eq!(report.insts, trace.total_lookups());
        let single = e.run_nmp(&cfg).unwrap();
        assert!(report.total_cycles < single.total_cycles);
    }
}
