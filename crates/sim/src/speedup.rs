//! The SLS memory-latency comparison engine (Figures 14, 15, 16).
//!
//! One [`SpeedupEngine`] owns a workload and serves it, from identical
//! physical traces, to the DRAM host baseline, RecNMP configurations, and
//! the DIMM-level NMP comparators, reporting cycles-per-lookup for each.

use recnmp::{NmpRunReport, RecNmpConfig, RecNmpSystem};
use recnmp_baselines::{BaselineReport, Chameleon, HostBaseline, TensorDimm};
use recnmp_dram::DramConfig;
use recnmp_types::{ConfigError, PhysAddr};
use serde::{Deserialize, Serialize};

use crate::workload::{SlsWorkload, TableLayout, TraceKind};

/// Cycles-per-lookup of two systems on the same trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlsComparison {
    /// Host baseline cycles per lookup.
    pub baseline_cpl: f64,
    /// RecNMP cycles per lookup.
    pub nmp_cpl: f64,
    /// The RecNMP run report (cache stats, imbalance, energy inputs).
    pub nmp_report: NmpRunReport,
    /// The baseline run report.
    pub baseline_report: recnmp_dram::DramStats,
    /// Host total cycles.
    pub baseline_cycles: u64,
}

impl SlsComparison {
    /// Memory-latency speedup of RecNMP over the baseline.
    pub fn speedup(&self) -> f64 {
        if self.nmp_cpl == 0.0 {
            0.0
        } else {
            self.baseline_cpl / self.nmp_cpl
        }
    }
}

/// Builds and runs matched SLS comparisons.
#[derive(Debug)]
pub struct SpeedupEngine {
    workload: SlsWorkload,
    seed: u64,
}

impl SpeedupEngine {
    /// Creates an engine over a workload.
    pub fn new(workload: SlsWorkload, seed: u64) -> Self {
        Self { workload, seed }
    }

    /// Convenience constructor: `tables` tables, `rounds` windows of
    /// `batch_size` poolings of 80.
    pub fn with_workload(
        kind: TraceKind,
        tables: usize,
        rounds: usize,
        batch_size: usize,
        seed: u64,
    ) -> Self {
        Self::new(
            SlsWorkload::build(kind, tables, rounds, batch_size, 80, seed),
            seed,
        )
    }

    /// The workload.
    pub fn workload(&self) -> &SlsWorkload {
        &self.workload
    }

    fn layout_for(&self, config: &RecNmpConfig) -> TableLayout {
        let capacity = recnmp_dram::address::Geometry::ddr4_8gb_x8(config.total_ranks())
            .capacity_bytes();
        TableLayout::random(&self.workload.specs, capacity, self.seed ^ 0xfeed)
    }

    /// Runs the host baseline on the flat trace, with a channel matching
    /// `config`'s DIMM/rank counts.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid configurations.
    pub fn run_host(&self, config: &RecNmpConfig) -> Result<BaselineReport, ConfigError> {
        let mut layout = self.layout_for(config);
        let trace = self
            .workload
            .flat_trace(&mut |t, r| layout.translate(t, r));
        let mut dram_cfg = DramConfig::with_ranks(config.dimms, config.ranks_per_dimm);
        dram_cfg.refresh = config.refresh;
        let mut host = HostBaseline::with_config(dram_cfg)?;
        Ok(host.run(&trace, self.workload.specs[0].bursts_per_vector() as u8))
    }

    /// Runs a RecNMP configuration on the same workload.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid configurations.
    pub fn run_nmp(&self, config: &RecNmpConfig) -> Result<NmpRunReport, ConfigError> {
        let mut layout = self.layout_for(config);
        let mut sys = RecNmpSystem::new(config.clone())?;
        let packets = self.workload.packets(
            config,
            sys.geometry(),
            sys.mapping(),
            &mut |t, r| layout.translate(t, r),
        );
        Ok(sys.run_packets(&packets))
    }

    /// Runs RecNMP with page-colored table placement (Figure 14(a)).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid configurations.
    pub fn run_nmp_colored(&self, config: &RecNmpConfig) -> Result<NmpRunReport, ConfigError> {
        let ranks = config.total_ranks() as u32;
        let capacity = recnmp_dram::address::Geometry::ddr4_8gb_x8(config.total_ranks())
            .capacity_bytes();
        let mut sys = RecNmpSystem::new(config.clone())?;
        let geo = sys.geometry();
        let mapping = sys.mapping();
        // Color = the rank a page's bursts decode to (a 4 KiB page spans
        // 64 columns of one row, hence a single rank even under the XOR
        // mapping). Page-colored OS allocation needs a capture-free
        // function, so pick the decoder matching the rank count.
        fn decode_rank<const R: u8>(frame: u64) -> u32 {
            recnmp_dram::AddressMapping::SkylakeXor
                .decode(
                    PhysAddr::new(frame * 4096),
                    &recnmp_dram::address::Geometry::ddr4_8gb_x8(R),
                )
                .rank as u32
        }
        let color_of: fn(u64) -> u32 = match config.total_ranks() {
            1 => decode_rank::<1>,
            2 => decode_rank::<2>,
            4 => decode_rank::<4>,
            8 => decode_rank::<8>,
            _ => decode_rank::<2>,
        };
        let mut layout = crate::workload::TableLayout::colored(
            &self.workload.specs,
            capacity,
            self.seed ^ 0xc01c,
            color_of,
            ranks,
        );
        let packets = self.workload.packets(
            config,
            geo,
            mapping,
            &mut |t, r| layout.translate(t, r),
        );
        // Page coloring pays off only with task-level parallelism: packets
        // from different tables run on different ranks simultaneously
        // (paper, Section V-A), hence the overlapped execution mode.
        Ok(sys.run_packets_overlapped(&packets))
    }

    /// Runs TensorDIMM on the flat trace.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid configurations.
    pub fn run_tensordimm(&self, config: &RecNmpConfig) -> Result<BaselineReport, ConfigError> {
        let mut layout = self.layout_for(config);
        let trace = self
            .workload
            .flat_trace(&mut |t, r| layout.translate(t, r));
        let mut td = TensorDimm::new(config.dimms, config.ranks_per_dimm)?;
        Ok(td.run(&trace, self.workload.specs[0].bursts_per_vector() as u8))
    }

    /// Runs Chameleon on the flat trace.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid configurations.
    pub fn run_chameleon(&self, config: &RecNmpConfig) -> Result<BaselineReport, ConfigError> {
        let mut layout = self.layout_for(config);
        let trace = self
            .workload
            .flat_trace(&mut |t, r| layout.translate(t, r));
        let mut ch = Chameleon::new(config.dimms, config.ranks_per_dimm)?;
        Ok(ch.run(&trace, self.workload.specs[0].bursts_per_vector() as u8))
    }

    /// Full host-vs-RecNMP comparison.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid configurations.
    pub fn compare(&self, config: &RecNmpConfig) -> Result<SlsComparison, ConfigError> {
        let host = self.run_host(config)?;
        let nmp = self.run_nmp(config)?;
        Ok(SlsComparison {
            baseline_cpl: host.cycles_per_lookup(),
            nmp_cpl: nmp.cycles_per_lookup(),
            nmp_report: nmp,
            baseline_report: host.dram,
            baseline_cycles: host.total_cycles,
        })
    }

    /// The lookup trace (for external consumers like energy accounting).
    pub fn trace_for(&self, config: &RecNmpConfig) -> Vec<PhysAddr> {
        let mut layout = self.layout_for(config);
        self.workload
            .flat_trace(&mut |t, r| layout.translate(t, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(mut cfg: RecNmpConfig) -> RecNmpConfig {
        cfg.refresh = false;
        cfg
    }

    fn engine() -> SpeedupEngine {
        SpeedupEngine::with_workload(TraceKind::Production, 4, 1, 8, 11)
    }

    #[test]
    fn nmp_beats_host_on_8_ranks() {
        let e = engine();
        let cmp = e.compare(&quiet(RecNmpConfig::with_ranks(4, 2))).unwrap();
        assert!(
            cmp.speedup() > 2.0,
            "8-rank RecNMP-base speedup only {:.2}",
            cmp.speedup()
        );
        assert!(cmp.speedup() < 10.0, "{:.2}", cmp.speedup());
    }

    #[test]
    fn optimized_beats_base() {
        let e = engine();
        let base = e.compare(&quiet(RecNmpConfig::with_ranks(4, 2))).unwrap();
        let opt = e.compare(&quiet(RecNmpConfig::optimized(4, 2))).unwrap();
        assert!(
            opt.speedup() > base.speedup(),
            "base {:.2} vs opt {:.2}",
            base.speedup(),
            opt.speedup()
        );
    }

    #[test]
    fn recnmp_beats_dimm_level_comparators() {
        let e = engine();
        let cfg = quiet(RecNmpConfig::optimized(4, 2));
        let nmp = e.run_nmp(&cfg).unwrap();
        let td = e.run_tensordimm(&cfg).unwrap();
        let ch = e.run_chameleon(&cfg).unwrap();
        assert!(nmp.cycles_per_lookup() < td.cycles_per_lookup());
        assert!(td.cycles_per_lookup() < ch.cycles_per_lookup());
    }

    #[test]
    fn page_coloring_reaches_near_ideal_throughput() {
        // 8 tables on 8 ranks: coloring pins one table per rank and the
        // overlapped execution keeps all ranks busy — faster than the
        // serial-packet random layout (paper: 7.35x vs lower).
        let e = SpeedupEngine::with_workload(TraceKind::Production, 8, 1, 8, 13);
        let cfg = quiet(RecNmpConfig::with_ranks(4, 2));
        let random = e.run_nmp(&cfg).unwrap();
        let colored = e.run_nmp_colored(&cfg).unwrap();
        assert!(
            colored.total_cycles < random.total_cycles,
            "random {} vs colored {}",
            random.total_cycles,
            colored.total_cycles
        );
    }
}
