//! Plain-text table rendering for experiment output.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A titled table of strings, rendered with aligned columns.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TextTable {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Convenience: appends a row of displayable items.
    pub fn row<D: fmt::Display>(&mut self, items: &[D]) {
        self.push_row(items.iter().map(|i| i.to_string()).collect());
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        writeln!(f, "## {}", self.title)?;
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (cell, width) in cells.iter().zip(&w) {
                write!(f, " {cell:>width$} |")?;
            }
            writeln!(f)
        };
        render_row(f, &self.headers)?;
        write!(f, "|")?;
        for width in &w {
            write!(f, "{}|", "-".repeat(width + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimal places (the convention in experiment
/// tables).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a speedup multiplier.
pub fn x2(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("demo", &["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["long-name", "22"]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("| long-name |"));
        assert!(s.contains("|      name |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new("demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.4567), "45.7%");
        assert_eq!(x2(9.81), "9.81x");
    }
}
