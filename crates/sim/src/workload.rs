//! Shared SLS workload construction.
//!
//! Fair comparisons require every system to serve the *same* physical
//! address trace. [`TableLayout`] owns the logical layout (tables
//! contiguous in logical space) and one OS page mapper; [`SlsWorkload`]
//! generates the batches and derives, from a single source of truth, both
//! the flat vector trace (host baseline, TensorDIMM, Chameleon) and the
//! NMP packet stream (RecNMP).

use recnmp::packet::NmpPacket;
use recnmp::RecNmpConfig;
use recnmp_backend::SlsTrace;
use recnmp_dram::address::{AddressMapping, Geometry};
use recnmp_trace::{EmbeddingTableSpec, IndexDistribution, PageMapper, SlsBatch, TraceGenerator};
use recnmp_types::{PhysAddr, TableId};

/// Which index streams the workload draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Uniform-random lookups (the paper's worst-case "random trace").
    Random,
    /// Production-like T1..T8 presets (cycled for more than 8 tables).
    Production,
}

/// Logical/physical layout shared by all systems in one comparison.
#[derive(Debug)]
pub struct TableLayout {
    bases: Vec<u64>,
    specs: Vec<EmbeddingTableSpec>,
    mapper: PageMapper,
}

impl TableLayout {
    /// Lays out `specs` contiguously and maps pages randomly into a
    /// physical space of `capacity_bytes`.
    pub fn random(specs: &[EmbeddingTableSpec], capacity_bytes: u64, seed: u64) -> Self {
        let mut bases = Vec::with_capacity(specs.len());
        let mut base = 0u64;
        for s in specs {
            bases.push(base);
            base += s.bytes();
        }
        Self {
            bases,
            specs: specs.to_vec(),
            mapper: PageMapper::new(capacity_bytes / 4096, seed),
        }
    }

    /// Page-colored layout: table `t`'s pages are pinned to color
    /// `t % colors` under `color_of` (the Figure 14(a) data-layout
    /// optimization). All tables share one color function; the mapper is
    /// rebuilt per table internally.
    pub fn colored(
        specs: &[EmbeddingTableSpec],
        capacity_bytes: u64,
        seed: u64,
        color_of: fn(u64) -> u32,
        colors: u32,
    ) -> ColoredTableLayout {
        let mut bases = Vec::with_capacity(specs.len());
        let mut base = 0u64;
        for s in specs {
            bases.push(base);
            base += s.bytes();
        }
        let mappers = (0..specs.len())
            .map(|t| {
                PageMapper::colored(
                    capacity_bytes / 4096,
                    seed.wrapping_add(t as u64),
                    color_of,
                    t as u32 % colors,
                )
            })
            .collect();
        ColoredTableLayout {
            bases,
            specs: specs.to_vec(),
            mappers,
        }
    }

    /// Translates (table, row) to a physical address.
    pub fn translate(&mut self, table: usize, row: u64) -> PhysAddr {
        let logical = self.bases[table] + row * self.specs[table].vector_bytes;
        self.mapper.translate(logical)
    }
}

/// Page-colored variant of [`TableLayout`].
#[derive(Debug)]
pub struct ColoredTableLayout {
    bases: Vec<u64>,
    specs: Vec<EmbeddingTableSpec>,
    mappers: Vec<PageMapper>,
}

impl ColoredTableLayout {
    /// Translates (table, row) to a physical address in the table's color.
    pub fn translate(&mut self, table: usize, row: u64) -> PhysAddr {
        let logical = self.bases[table] + row * self.specs[table].vector_bytes;
        self.mappers[table].translate(logical)
    }
}

/// A complete SLS workload: per-table batches in thread-arrival order.
#[derive(Debug, Clone)]
pub struct SlsWorkload {
    /// One batch per (round, table), in arrival order (round-robin across
    /// tables — the parallel-SLS-thread interleave of production).
    pub batches: Vec<SlsBatch>,
    /// Table specs by table index.
    pub specs: Vec<EmbeddingTableSpec>,
}

impl SlsWorkload {
    /// Builds a workload of `tables` tables, `rounds` batch windows of
    /// `batch_size` poolings each, `pooling` lookups per pooling.
    pub fn build(
        kind: TraceKind,
        tables: usize,
        rounds: usize,
        batch_size: usize,
        pooling: usize,
        seed: u64,
    ) -> Self {
        let spec = EmbeddingTableSpec::dlrm_default();
        let mut gens: Vec<TraceGenerator> = (0..tables)
            .map(|t| match kind {
                TraceKind::Random => TraceGenerator::new(
                    TableId::new(t as u32),
                    spec,
                    IndexDistribution::Uniform,
                    seed.wrapping_add(31 * t as u64),
                ),
                TraceKind::Production => {
                    // Re-tag cycled tables so co-located clones stay
                    // distinct, keeping the preset's skew and burstiness.
                    let preset = recnmp_trace::production::PRODUCTION_TABLES[t % 8];
                    TraceGenerator::new(
                        TableId::new(t as u32),
                        spec,
                        IndexDistribution::Zipf { s: preset.zipf_s },
                        seed.wrapping_add(131 * t as u64),
                    )
                    .with_burst_reuse(preset.reuse_p, preset.reuse_window)
                }
            })
            .collect();
        let mut batches = Vec::with_capacity(tables * rounds);
        for _ in 0..rounds {
            for g in gens.iter_mut() {
                batches.push(g.batch(batch_size, pooling));
            }
        }
        Self {
            batches,
            specs: vec![spec; tables],
        }
    }

    /// Total lookups across all batches.
    pub fn total_lookups(&self) -> usize {
        self.batches.iter().map(SlsBatch::total_lookups).sum()
    }

    /// The shared [`SlsTrace`] under `translate` — the single input every
    /// [`SlsBackend`](recnmp_backend::SlsBackend) serves.
    pub fn trace(&self, translate: &mut dyn FnMut(usize, u64) -> PhysAddr) -> SlsTrace {
        SlsTrace::from_batches(&self.batches, translate)
    }

    /// The flat physical vector trace, in arrival order (what the host
    /// baseline and DIMM-level NMP systems serve).
    pub fn flat_trace(&self, translate: &mut dyn FnMut(usize, u64) -> PhysAddr) -> Vec<PhysAddr> {
        self.trace(translate).flat()
    }

    /// Compiles the workload into scheduled NMP packets for `config`,
    /// applying the configured profiling and scheduling.
    pub fn packets(
        &self,
        config: &RecNmpConfig,
        geo: Geometry,
        mapping: AddressMapping,
        translate: &mut dyn FnMut(usize, u64) -> PhysAddr,
    ) -> Vec<NmpPacket> {
        recnmp::compile_trace(config, geo, mapping, &self.trace(translate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shape() {
        let w = SlsWorkload::build(TraceKind::Random, 4, 2, 8, 80, 1);
        assert_eq!(w.batches.len(), 8);
        assert_eq!(w.total_lookups(), 4 * 2 * 8 * 80);
    }

    #[test]
    fn flat_trace_matches_lookup_count() {
        let w = SlsWorkload::build(TraceKind::Production, 2, 1, 4, 10, 2);
        let mut layout = TableLayout::random(&w.specs, 16 << 30, 3);
        let trace = w.flat_trace(&mut |t, r| layout.translate(t, r));
        assert_eq!(trace.len(), w.total_lookups());
    }

    #[test]
    fn same_seed_same_trace() {
        let w1 = SlsWorkload::build(TraceKind::Production, 2, 1, 4, 10, 7);
        let w2 = SlsWorkload::build(TraceKind::Production, 2, 1, 4, 10, 7);
        let mut l1 = TableLayout::random(&w1.specs, 16 << 30, 9);
        let mut l2 = TableLayout::random(&w2.specs, 16 << 30, 9);
        assert_eq!(
            w1.flat_trace(&mut |t, r| l1.translate(t, r)),
            w2.flat_trace(&mut |t, r| l2.translate(t, r))
        );
    }

    #[test]
    fn packets_cover_all_lookups() {
        let w = SlsWorkload::build(TraceKind::Random, 2, 2, 8, 20, 5);
        let cfg = RecNmpConfig::with_ranks(1, 2);
        let mut layout = TableLayout::random(&w.specs, 16 << 30, 5);
        let geo = Geometry::ddr4_8gb_x8(2);
        let packets = w.packets(&cfg, geo, AddressMapping::SkylakeXor, &mut |t, r| {
            layout.translate(t, r)
        });
        let insts: usize = packets.iter().map(NmpPacket::len).sum();
        assert_eq!(insts, w.total_lookups());
    }

    #[test]
    fn colored_layout_respects_colors() {
        fn color(frame: u64) -> u32 {
            (frame % 2) as u32
        }
        let specs = vec![EmbeddingTableSpec::new(10_000, 64); 2];
        let mut layout = TableLayout::colored(&specs, 16 << 30, 1, color, 2);
        for row in 0..200 {
            assert_eq!(color(layout.translate(0, row).page_frame()), 0);
            assert_eq!(color(layout.translate(1, row).page_frame()), 1);
        }
    }
}
