//! Co-located model inference: latency and throughput (Figures 17, 18(c)).
//!
//! Production servers co-locate several model instances. Co-location
//! raises throughput but degrades latency through two couplings the
//! paper quantifies:
//!
//! * **Bandwidth contention** — parallel SLS threads saturate the memory
//!   system (Figure 6); latency inflates with utilization.
//! * **Cache contention** — SLS streams evict FC weights from the LLC
//!   (Figure 17); RecNMP removes that traffic.
//!
//! Additionally, with production traces some SLS lookups hit the CPU
//! cache hierarchy ("locality bonus", 1.10–1.21x in Figure 18(c)), a
//! bonus that wears off as co-location grows and the combined working
//! set overflows the LLC.

use recnmp_backend::{SlsBackend, SlsTrace};
use recnmp_model::{BandwidthModel, CpuPerfModel, ModelConfig};
use serde::{Deserialize, Serialize};

use crate::workload::TraceKind;

/// One point on the latency/throughput trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColocationPoint {
    /// Co-located model instances.
    pub co_located: usize,
    /// Per-inference latency in microseconds.
    pub latency_us: f64,
    /// Aggregate throughput in inferences per second.
    pub throughput_qps: f64,
}

/// The co-location simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct ColocationModel {
    /// CPU performance model.
    pub perf: CpuPerfModel,
    /// Bandwidth saturation model.
    pub bandwidth: BandwidthModel,
}

impl ColocationModel {
    /// Builds the Table I configuration.
    pub fn table1() -> Self {
        Self::default()
    }

    /// CPU-cache locality bonus for SLS on the host: production traces
    /// serve part of the gather from the cache hierarchy. Decays with
    /// co-location (cache interference from more tables), bracketing the
    /// paper's 1.10–1.21x observation.
    pub fn host_locality_bonus(&self, kind: TraceKind, co_located: usize) -> f64 {
        match kind {
            TraceKind::Random => 1.0,
            TraceKind::Production => {
                // 1.21x alone, decaying toward 1.10x under heavy
                // co-location (Figure 18(c) annotations).
                let decay = 0.6f64.powi(co_located.saturating_sub(1) as i32);
                1.10 + 0.11 * decay
            }
        }
    }

    /// Baseline (CPU) inference latency under co-location.
    pub fn host_latency_us(
        &self,
        config: &ModelConfig,
        batch: usize,
        co_located: usize,
        kind: TraceKind,
    ) -> f64 {
        let bd = self
            .perf
            .breakdown_colocated(config, batch, co_located, false);
        // Each co-located model contributes parallel SLS threads; latency
        // inflates as the channel saturates.
        let threads = co_located * 4;
        let inflation = self.bandwidth.latency_multiplier(threads, batch);
        let sls = bd.sls_us * inflation / self.host_locality_bonus(kind, co_located);
        sls + bd.bottom_fc_us + bd.top_fc_us + bd.other_us
    }

    /// RecNMP inference latency under co-location, given the SLS
    /// memory-latency speedup measured by the cycle-level engine.
    pub fn nmp_latency_us(
        &self,
        config: &ModelConfig,
        batch: usize,
        co_located: usize,
        sls_speedup: f64,
        kind: TraceKind,
    ) -> f64 {
        let bd = self
            .perf
            .breakdown_colocated(config, batch, co_located, true);
        // RecNMP's production-trace advantage is already inside
        // `sls_speedup` (RankCache hits); the host-side locality bonus
        // does not apply because lookups bypass the CPU caches.
        let _ = kind;
        bd.sls_us / sls_speedup + bd.bottom_fc_us + bd.top_fc_us + bd.other_us
    }

    /// Measures the SLS memory-latency speedup by serving `trace` on both
    /// backends — the cycle-level input the analytic curves consume. Any
    /// [`SlsBackend`] pair works: host vs RecNMP, host vs a cluster, one
    /// RecNMP configuration vs another.
    pub fn measured_sls_speedup(
        baseline: &mut dyn SlsBackend,
        accelerated: &mut dyn SlsBackend,
        trace: &SlsTrace,
    ) -> f64 {
        let base = baseline.run(trace).cycles_per_lookup();
        let accel = accelerated.run(trace).cycles_per_lookup();
        if accel == 0.0 {
            0.0
        } else {
            base / accel
        }
    }

    /// Latency/throughput curve with the SLS speedup measured directly
    /// from a backend pair instead of passed in by hand.
    // One parameter per physical input: an analytic config half and a
    // cycle-level backend half. Bundling them would just move the arity.
    #[allow(clippy::too_many_arguments)]
    pub fn curve_measured(
        &self,
        config: &ModelConfig,
        batch: usize,
        max_co_located: usize,
        kind: TraceKind,
        baseline: &mut dyn SlsBackend,
        accelerated: &mut dyn SlsBackend,
        trace: &SlsTrace,
    ) -> Vec<ColocationPoint> {
        let speedup = Self::measured_sls_speedup(baseline, accelerated, trace);
        // The 0.0 sentinel means "nothing was measured" (empty trace or a
        // backend that served no lookups); dividing by it would produce
        // infinite latencies that corrupt downstream tables silently.
        assert!(
            speedup > 0.0,
            "cannot measure an SLS speedup: the accelerated backend served no lookups"
        );
        self.curve(config, batch, max_co_located, kind, Some(speedup))
    }

    /// Latency/throughput curve for increasing co-location.
    pub fn curve(
        &self,
        config: &ModelConfig,
        batch: usize,
        max_co_located: usize,
        kind: TraceKind,
        nmp_sls_speedup: Option<f64>,
    ) -> Vec<ColocationPoint> {
        (1..=max_co_located)
            .map(|m| {
                let latency_us = match nmp_sls_speedup {
                    None => self.host_latency_us(config, batch, m, kind),
                    Some(s) => self.nmp_latency_us(config, batch, m, s, kind),
                };
                // m models each finish `batch` inferences per latency.
                let throughput_qps = m as f64 * batch as f64 / (latency_us * 1e-6);
                ColocationPoint {
                    co_located: m,
                    latency_us,
                    throughput_qps,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_model::RecModelKind;

    fn m() -> ColocationModel {
        ColocationModel::table1()
    }

    #[test]
    fn colocation_raises_latency_and_throughput() {
        let cfg = RecModelKind::Rm1Large.config();
        let pts = m().curve(&cfg, 64, 8, TraceKind::Random, None);
        assert!(pts[7].latency_us > pts[0].latency_us);
        assert!(pts[7].throughput_qps > pts[0].throughput_qps);
    }

    #[test]
    fn production_traces_are_faster_on_host() {
        let cfg = RecModelKind::Rm1Large.config();
        let rand = m().host_latency_us(&cfg, 64, 1, TraceKind::Random);
        let prod = m().host_latency_us(&cfg, 64, 1, TraceKind::Production);
        let bonus = rand / prod * (1.0);
        assert!(prod < rand);
        // The locality bonus at low co-location is in the paper's band.
        let implied = m().host_locality_bonus(TraceKind::Production, 1);
        assert!((1.10..=1.25).contains(&implied), "{implied}");
        let _ = bonus;
    }

    #[test]
    fn locality_bonus_wears_off() {
        let one = m().host_locality_bonus(TraceKind::Production, 1);
        let eight = m().host_locality_bonus(TraceKind::Production, 8);
        assert!(eight < one);
        assert!((1.05..=1.15).contains(&eight), "{eight}");
    }

    #[test]
    fn measured_curve_runs_real_backends() {
        use recnmp::{RecNmpConfig, RecNmpSystem};
        use recnmp_baselines::HostBaseline;

        let e = crate::speedup::SpeedupEngine::with_workload(TraceKind::Production, 4, 1, 8, 77);
        let mut cfg = RecNmpConfig::optimized(4, 2);
        cfg.refresh = false;
        let trace = e.trace_for(&cfg);
        // Matched comparison: both systems share the refresh setting.
        let mut dram_cfg = recnmp_dram::DramConfig::with_ranks(cfg.dimms, cfg.ranks_per_dimm);
        dram_cfg.refresh = cfg.refresh;
        let mut host = HostBaseline::with_config(dram_cfg).unwrap();
        let mut sys = RecNmpSystem::new(cfg).unwrap();

        let model_cfg = RecModelKind::Rm2Small.config();
        let analytic = m().curve(&model_cfg, 64, 4, TraceKind::Production, None);
        let measured = m().curve_measured(
            &model_cfg,
            64,
            4,
            TraceKind::Production,
            &mut host,
            &mut sys,
            &trace,
        );
        for (h, n) in analytic.iter().zip(&measured) {
            assert!(
                n.latency_us < h.latency_us,
                "{} vs {}",
                n.latency_us,
                h.latency_us
            );
        }
    }

    #[test]
    fn nmp_beats_host_at_every_colocation_level() {
        let cfg = RecModelKind::Rm2Small.config();
        let host = m().curve(&cfg, 128, 6, TraceKind::Production, None);
        let nmp = m().curve(&cfg, 128, 6, TraceKind::Production, Some(9.8));
        for (h, n) in host.iter().zip(&nmp) {
            assert!(n.latency_us < h.latency_us);
            assert!(n.throughput_qps > h.throughput_qps);
        }
    }

    #[test]
    fn end_to_end_speedup_band_matches_figure_18c() {
        // RM1-large and RM2-small co-located: 2.8-3.5x and 3.2-4.0x.
        let model = m();
        for (kind, lo, hi) in [
            (RecModelKind::Rm1Large, 2.0, 4.2),
            (RecModelKind::Rm2Small, 2.4, 4.8),
        ] {
            let cfg = kind.config();
            for co in [1, 2, 4, 8] {
                let h = model.host_latency_us(&cfg, 256, co, TraceKind::Production);
                let n = model.nmp_latency_us(&cfg, 256, co, 9.8, TraceKind::Production);
                let s = h / n;
                assert!((lo..hi).contains(&s), "{kind} co={co}: {s:.2}");
            }
        }
    }
}
