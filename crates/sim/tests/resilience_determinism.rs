//! Resilience determinism and outcome invariants:
//!
//! * resilient fleet serving is byte-identical across execution-pool
//!   worker counts {1, 2, 8} and across reruns at a fixed count, with an
//!   *active* fault plan (crash + degradation + transient timeouts) and
//!   every recovery mechanism engaged (retry, hedging, SLO guard);
//! * outcomes conserve the offered load: every query is exactly one of
//!   completed / rejected / shed / failed, and the counters agree;
//! * a zero-fault, zero-policy resilience run reproduces the plain
//!   fleet path byte for byte;
//! * (property) failover never routes a query to a crashed node, for
//!   every router, seed and crash site.

use proptest::prelude::*;
use recnmp_exec::{with_pool, ExecPool};
use recnmp_sim::serving::faults::{
    FaultPlan, HedgePolicy, QueryOutcome, ResilienceConfig, RetryPolicy, SloPolicy,
};
use recnmp_sim::serving::fleet::{
    serve_fleet, serve_fleet_resilient, Fleet, FleetConfig, FleetDispatch, FleetReport,
    RouterPolicy,
};
use recnmp_sim::serving::{ArrivalProcess, QueryShape};

fn shape() -> QueryShape {
    QueryShape::new(10, 2, 6)
        .with_table_skew(1.1)
        .with_table_sampling(3)
}

fn cfg(nodes: usize, queries: usize, dispatch: FleetDispatch) -> FleetConfig {
    FleetConfig {
        process: ArrivalProcess::Poisson,
        qps: 30_000.0 * nodes as f64,
        queries,
        shape: shape(),
        dispatch,
        seed: 0xfa_c75,
    }
}

/// An aggressive configuration that engages every mechanism at once:
/// a mid-run crash, a permanently degraded channel, a transient timeout
/// window, bounded retries, p95 hedging and an SLO guard.
fn active_res() -> ResilienceConfig {
    ResilienceConfig::new(
        FaultPlan::none()
            .with_crash(2, 150_000)
            .with_degrade(0, 1, 0, u64::MAX, 3)
            .with_timeout(1, 0, 100_000, 400_000),
    )
    .with_retry(RetryPolicy::serving_default(40_000))
    .with_hedge(HedgePolicy::p95())
    .with_slo(SloPolicy::new(40_000))
}

fn run_with_workers(workers: usize, dispatch: FleetDispatch) -> FleetReport {
    let pool = ExecPool::new(workers).expect("positive worker count");
    with_pool(&pool, || {
        let mut fleet = Fleet::reference(3);
        serve_fleet_resilient(&mut fleet, &cfg(3, 24, dispatch), &active_res())
            .expect("resilient fleet run")
    })
}

#[test]
fn resilient_output_is_byte_identical_across_worker_counts() {
    for dispatch in [FleetDispatch::replicated(10), FleetDispatch::sharded()] {
        let one = run_with_workers(1, dispatch);
        for workers in [2, 8] {
            let other = run_with_workers(workers, dispatch);
            assert_eq!(
                one,
                other,
                "{}: workers=1 vs workers={workers} diverged under faults",
                dispatch.label()
            );
        }
        // Rerun at a fixed count: neither the pool nor the health
        // tracker may leak state between runs.
        assert_eq!(one, run_with_workers(1, dispatch), "rerun diverged");
    }
}

#[test]
fn outcomes_conserve_the_offered_load() {
    for dispatch in [FleetDispatch::replicated(10), FleetDispatch::sharded()] {
        let report = run_with_workers(1, dispatch);
        let offered = report.outcomes.len() as u64;
        let count =
            |want: QueryOutcome| report.outcomes.iter().filter(|&&o| o == want).count() as u64;
        assert_eq!(
            offered,
            count(QueryOutcome::Completed)
                + count(QueryOutcome::Rejected)
                + count(QueryOutcome::Shed)
                + count(QueryOutcome::Failed),
            "outcomes must partition the offered queries"
        );
        assert_eq!(
            count(QueryOutcome::Rejected),
            report.report.queries_rejected
        );
        assert_eq!(count(QueryOutcome::Shed), report.report.queries_shed);
        assert_eq!(count(QueryOutcome::Failed), report.report.queries_failed);
        assert_eq!(count(QueryOutcome::Completed), report.completed() as u64);
        assert_eq!(
            report.failures.len() as u64,
            report.report.queries_failed,
            "every failed query records its error"
        );
    }
}

#[test]
fn zero_fault_resilience_reproduces_the_plain_fleet_path() {
    for router in RouterPolicy::ALL {
        for dispatch in [
            FleetDispatch {
                router,
                ..FleetDispatch::replicated(2)
            },
            FleetDispatch {
                router,
                ..FleetDispatch::sharded()
            },
        ] {
            let c = cfg(3, 24, dispatch);
            let mut plain_fleet = Fleet::reference(3);
            let plain = serve_fleet(&mut plain_fleet, &c).expect("plain fleet run");
            let mut res_fleet = Fleet::reference(3);
            let resilient = serve_fleet_resilient(&mut res_fleet, &c, &ResilienceConfig::zero())
                .expect("zero-fault resilient run");
            assert_eq!(
                plain.latencies,
                resilient.latencies,
                "router {} diverged with a zero fault plan",
                router.name()
            );
            assert_eq!(plain.completions, resilient.completions);
            assert_eq!(plain.node_queries, resilient.node_queries);
            assert_eq!(plain.report, resilient.report);
        }
    }
}

fn router_strategy() -> impl Strategy<Value = RouterPolicy> {
    prop_oneof![
        Just(RouterPolicy::HashAffinity),
        Just(RouterPolicy::LeastOutstanding),
        Just(RouterPolicy::PlacementScatter),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The failover invariant: with every table replicated everywhere and
    // one node down from cycle 0, no query is ever dispatched to the
    // dead node, and — because a live replica always exists — none fail.
    #[test]
    fn failover_never_routes_to_a_crashed_node(
        router in router_strategy(),
        crashed in 0usize..3,
        seed in 0u64..1024,
        queries in 4usize..24,
    ) {
        let dispatch = FleetDispatch {
            router,
            ..FleetDispatch::replicated(10)
        };
        let mut c = cfg(3, queries, dispatch);
        c.seed = seed;
        let res = ResilienceConfig::new(FaultPlan::none().with_crash(crashed, 0));
        let mut fleet = Fleet::reference(3);
        let report = serve_fleet_resilient(&mut fleet, &c, &res).expect("resilient run");
        prop_assert_eq!(
            report.node_queries[crashed],
            0,
            "router {} sent queries to the crashed node",
            router.name()
        );
        prop_assert_eq!(report.report.queries_failed, 0);
        prop_assert!(report.availability() == 1.0);
    }
}
