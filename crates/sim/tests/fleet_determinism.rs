//! Fleet-level determinism and dispatch invariants:
//!
//! * fleet serving output is byte-identical across execution-pool worker
//!   counts {1, 2, 8} and across reruns at a fixed count;
//! * scattered queries conserve lookups across nodes for every router;
//! * a 1-node fleet is numerically the bare 4-channel cluster;
//! * (property) the router's node pick always lands on a node whose
//!   channel-level plan owns the table, for every table, salt, policy
//!   and geometry.

use proptest::prelude::*;
use recnmp_backend::{FleetPlacementPlan, PlacementPolicy, SlsTrace, TableUsage};
use recnmp_exec::{with_pool, ExecPool};
use recnmp_sim::serving::fleet::{
    serve_fleet, Fleet, FleetConfig, FleetDispatch, FleetReport, RouterPolicy,
};
use recnmp_sim::serving::{
    reference_cluster4, serve, ArrivalProcess, QueryShape, QueryStream, ServingConfig, ServingMode,
    ShardedDispatch,
};
use recnmp_types::TableId;

fn shape() -> QueryShape {
    QueryShape::new(10, 2, 6)
        .with_table_skew(1.1)
        .with_table_sampling(3)
}

fn cfg(nodes: usize, queries: usize, dispatch: FleetDispatch) -> FleetConfig {
    FleetConfig {
        process: ArrivalProcess::Poisson,
        qps: 30_000.0 * nodes as f64,
        queries,
        shape: shape(),
        dispatch,
        seed: 0xd5_7e57,
    }
}

fn run_with_workers(workers: usize, nodes: usize, dispatch: FleetDispatch) -> FleetReport {
    let pool = ExecPool::new(workers).expect("positive worker count");
    with_pool(&pool, || {
        let mut fleet = Fleet::reference(nodes);
        serve_fleet(&mut fleet, &cfg(nodes, 24, dispatch)).expect("fleet serving run")
    })
}

#[test]
fn fleet_output_is_byte_identical_across_worker_counts() {
    for dispatch in [FleetDispatch::replicated(2), FleetDispatch::sharded()] {
        let one = run_with_workers(1, 3, dispatch);
        for workers in [2, 8] {
            let other = run_with_workers(workers, 3, dispatch);
            assert_eq!(
                one,
                other,
                "{}: workers=1 vs workers={workers} diverged",
                dispatch.label()
            );
        }
        // Rerun at a fixed count: the pool must not leak state between
        // runs.
        assert_eq!(one, run_with_workers(1, 3, dispatch), "rerun diverged");
    }
}

#[test]
fn fleet_serving_conserves_lookups_across_nodes() {
    for router in RouterPolicy::ALL {
        let dispatch = FleetDispatch {
            router,
            ..FleetDispatch::replicated(2)
        };
        let c = cfg(4, 20, dispatch);
        let mut fleet = Fleet::reference(4);
        let report = serve_fleet(&mut fleet, &c).expect("fleet serving run");
        let expected: u64 = QueryStream::new(c.shape, c.seed)
            .take_queries(c.queries)
            .iter()
            .map(SlsTrace::total_lookups)
            .sum();
        assert_eq!(
            report.report.insts,
            expected,
            "router {} lost or duplicated lookups",
            router.name()
        );
        // Every query is counted on at least one node, and a query
        // scattered over k nodes on each of them.
        let node_visits: u64 = report.node_queries.iter().sum();
        assert!(node_visits >= c.queries as u64);
        assert_eq!(report.latencies.len(), c.queries);
    }
}

#[test]
fn one_node_fleet_is_numerically_the_bare_cluster() {
    let dispatch = FleetDispatch::sharded();
    let fleet_cfg = cfg(1, 30, dispatch);
    let mut fleet = Fleet::reference(1);
    let fleet_report = serve_fleet(&mut fleet, &fleet_cfg).expect("fleet serving run");

    let mut cluster = reference_cluster4();
    let cluster_cfg = ServingConfig {
        process: fleet_cfg.process,
        qps: fleet_cfg.qps,
        queries: fleet_cfg.queries,
        shape: fleet_cfg.shape,
        mode: ServingMode::Sharded(ShardedDispatch {
            placement: dispatch.within_policy,
            gather: dispatch.gather,
            channel_capacity: dispatch.channel_capacity,
            host_cache: None,
            prefetch: None,
        }),
        coalescing: None,
        max_queue_depth: None,
        seed: fleet_cfg.seed,
    };
    let cluster_report = serve(cluster.as_mut(), &cluster_cfg).expect("cluster serving run");

    assert_eq!(fleet_report.arrivals, cluster_report.arrivals);
    assert_eq!(fleet_report.completions, cluster_report.completions);
    assert_eq!(fleet_report.latencies, cluster_report.latencies);
    assert_eq!(fleet_report.report.insts, cluster_report.report.insts);
    assert_eq!(
        fleet_report.report.total_cycles,
        cluster_report.report.total_cycles
    );
}

/// A random profiled-table set: table `i` with the given bytes/accesses.
fn usage_strategy() -> impl Strategy<Value = Vec<TableUsage>> {
    prop::collection::vec((1u64..100, 0u64..500), 1..16).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (bytes, accesses))| TableUsage::new(TableId::new(i as u32), bytes, accesses))
            .collect()
    })
}

fn node_policy_strategy() -> impl Strategy<Value = PlacementPolicy> {
    prop_oneof![
        Just(PlacementPolicy::Hash),
        Just(PlacementPolicy::CapacityGreedy),
        Just(PlacementPolicy::FrequencyBalanced { replicate: 0 }),
        Just(PlacementPolicy::FrequencyBalanced { replicate: 2 }),
        Just(PlacementPolicy::FrequencyBalanced { replicate: 5 }),
    ]
}

/// One random routing scenario: a table profile, a fleet geometry
/// (nodes, channels per node), both placement policies and a dispatch
/// salt. Grouped as two nested tuples — the vendored proptest implements
/// `Strategy` for tuples of at most five elements, and the flat
/// six-parameter `proptest!` form blows the macro recursion limit.
type RouterCase = (
    (Vec<TableUsage>, usize, usize),
    (PlacementPolicy, PlacementPolicy, usize),
);

fn router_case_strategy() -> impl Strategy<Value = RouterCase> {
    (
        (usage_strategy(), 1usize..6, 1usize..5),
        (node_policy_strategy(), node_policy_strategy(), 0usize..64),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The router invariant the dispatch loop relies on: for any table
    // the plan places and any dispatch salt, the node-level pick is one
    // of the table's node replicas, and that node's channel-level plan
    // actually owns the table.
    #[test]
    fn router_dispatch_lands_on_a_node_owning_the_table(case in router_case_strategy()) {
        let ((usages, nodes, channels), (node_policy, within_policy, salt)) = case;
        let plan = FleetPlacementPlan::build(
            nodes, channels, None, &usages, node_policy, within_policy,
        ).expect("uncapped build never fails");
        for u in &usages {
            let picked = plan.node_for(u.table, salt).expect("placed table");
            let n = picked.index();
            prop_assert!(
                plan.node_replicas(u.table).contains(&n),
                "table {:?} routed to node {n}, replicas {:?}",
                u.table, plan.node_replicas(u.table)
            );
            prop_assert!(
                !plan.per_node(n).replicas(u.table).is_empty(),
                "node {n} has no channel owning table {:?}",
                u.table
            );
        }
    }
}
