//! Cache-aware serving determinism and accounting invariants:
//!
//! * cached + prefetched serving output is byte-identical across
//!   execution-pool worker counts {1, 2, 8} and across reruns at a
//!   fixed count (the locality layers must not introduce scheduling
//!   nondeterminism);
//! * the host cache's hit/miss accounting conserves lookups — hits plus
//!   misses equals the lookups the query stream offered;
//! * the host cache genuinely absorbs traffic: with the hot row stream,
//!   the cached arm sees fewer channel-level instructions than the bare
//!   baseline with otherwise identical dispatch.

use recnmp_backend::SlsTrace;
use recnmp_exec::{with_pool, ExecPool};
use recnmp_sim::serving::{
    reference_caching_arms, reference_cluster4_optimized, serve, ArrivalProcess, QueryShape,
    QueryStream, ServingConfig, ServingMode, ServingReport,
};

fn shape() -> QueryShape {
    QueryShape::reference_skewed().with_row_skew(1.2)
}

fn cfg(mode: ServingMode) -> ServingConfig {
    ServingConfig {
        process: ArrivalProcess::Poisson,
        qps: 2_000_000.0,
        queries: 24,
        shape: shape(),
        mode,
        coalescing: None,
        max_queue_depth: None,
        seed: 0xcac4e,
    }
}

fn run_with_workers(workers: usize, mode: ServingMode) -> ServingReport {
    let pool = ExecPool::new(workers).expect("positive worker count");
    with_pool(&pool, || {
        let mut backend = reference_cluster4_optimized();
        backend.reset_caches();
        serve(backend.as_mut(), &cfg(mode)).expect("cached serving run")
    })
}

#[test]
fn cached_serving_is_byte_identical_across_worker_counts() {
    for (label, mode) in reference_caching_arms() {
        let one = run_with_workers(1, mode);
        for workers in [2, 8] {
            let other = run_with_workers(workers, mode);
            assert_eq!(
                one, other,
                "{label}: workers=1 vs workers={workers} diverged"
            );
        }
        // Rerun at a fixed count: neither the pool nor the caches may
        // leak state between runs (reset_caches must fully rewind).
        assert_eq!(one, run_with_workers(1, mode), "{label}: rerun diverged");
    }
}

#[test]
fn host_cache_accounting_conserves_lookups() {
    let arms = reference_caching_arms();
    let offered: u64 = {
        let c = cfg(arms[0].1);
        QueryStream::new(c.shape, c.seed)
            .take_queries(c.queries)
            .iter()
            .map(SlsTrace::total_lookups)
            .sum()
    };
    for (label, mode) in arms {
        let r = run_with_workers(1, mode);
        let cached = matches!(mode, ServingMode::Sharded(d) if d.host_cache.is_some());
        if cached {
            assert_eq!(
                r.report.host_hits + r.report.host_misses,
                offered,
                "{label}: hits + misses != offered lookups"
            );
            // Only hits shrink channel work; misses all reach the channels.
            assert_eq!(r.report.insts, r.report.host_misses, "{label}");
        } else {
            assert_eq!(r.report.host_hits, 0, "{label}: uncached arm counted hits");
            assert_eq!(
                r.report.insts, offered,
                "{label}: lookups lost or duplicated"
            );
        }
    }
}

#[test]
fn host_cache_absorbs_channel_traffic_on_the_hot_stream() {
    let arms = reference_caching_arms();
    let find = |needle: &str| {
        arms.iter()
            .find(|(label, _)| label == needle)
            .unwrap_or_else(|| panic!("{needle} is a reference arm"))
            .1
    };
    let bare = run_with_workers(1, find("sharded-frequency"));
    let cached = run_with_workers(1, find("cached-frequency@1MiB"));
    assert!(
        cached.report.host_hits > 0,
        "1 MiB cache saw no hits on the hot row stream"
    );
    assert!(
        cached.report.insts < bare.report.insts,
        "cache absorbed nothing: {} vs {} channel insts",
        cached.report.insts,
        bare.report.insts
    );
}
