//! Allocation guard for the execution engine's submit → execute →
//! collect cycle.
//!
//! The pool's steady state must be allocation-free: a reused [`Batch`]
//! keeps its task and result storage across runs, queue capacity is
//! retained by the shared `VecDeque`, and the Linux mutex/condvar pair
//! never allocates after thread startup. A counting global allocator
//! proves it — after warm-up rounds (which grow the batch vectors and
//! the job queue and lazily initialize per-thread parking state),
//! further rounds of the same traffic leave the allocation counter
//! untouched, on both the inline single-worker engine and a 2-worker
//! parallel pool.
//!
//! This file holds exactly one test so no concurrent test thread can
//! pollute the counter (mirroring `crates/dram/tests/alloc_steady_state.rs`,
//! which guards the scheduler hot path the tasks themselves run on).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use recnmp_exec::{Batch, ExecPool};

#[test]
fn steady_state_submit_collect_does_not_allocate() {
    for workers in [1usize, 2] {
        let pool = ExecPool::new(workers).expect("pool");
        let handle = pool.handle();
        let mut batch = Batch::new();
        let mut checksum = 0u64;
        let run_round = |batch: &mut Batch<_, u64>, salt: u64| -> u64 {
            for i in 0..32u64 {
                batch.push(move || {
                    let mut acc = salt.wrapping_mul(31).wrapping_add(i);
                    for k in 0..200u64 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                    }
                    Ok(acc)
                });
            }
            handle.run_batch(batch);
            let mut sum = 0u64;
            for r in batch.drain() {
                sum = sum.wrapping_add(r.expect("task result"));
            }
            sum
        };

        // Warm-up: grows the batch's task/result vectors and the shared
        // job queue to steady-state capacity, and exercises each worker's
        // first park/unpark.
        for salt in 0..4 {
            checksum = checksum.wrapping_add(run_round(&mut batch, salt));
        }

        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for salt in 4..12 {
            checksum = checksum.wrapping_add(run_round(&mut batch, salt));
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);

        assert!(checksum > 0);
        assert_eq!(
            after - before,
            0,
            "steady-state submit/collect with {workers} worker(s) allocated {} time(s)",
            after - before
        );
    }
}
