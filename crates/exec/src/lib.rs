//! Deterministic worker-pool execution engine for independent simulation
//! tasks.
//!
//! The simulator's parallelism used to be raw OS threads: one per cluster
//! channel and one per sweep load point (`std::thread::scope`), so a
//! placement sweep over a many-channel cluster multiplied scoped threads
//! combinatorially and a 256-channel [`run`](PoolHandle::run_vec) meant
//! 256 simultaneous spawns. This crate replaces that with a DAM-style
//! engine: simulation units become [tasks](Batch) scheduled onto a
//! **fixed-size pool** of workers, so the thread count is a configuration
//! knob (default [`default_workers`]) instead of a function of the
//! simulated topology.
//!
//! # Determinism contract
//!
//! Tasks must be **independent** (no shared mutable state, no global RNG)
//! and deterministic; the engine guarantees the rest:
//!
//! * results are collected in **submission order**, never completion
//!   order, so the assembled output is byte-identical for any worker
//!   count — including the degenerate single-worker pool, which runs
//!   every task inline on the submitting thread;
//! * when several tasks fail, the error returned is the **first failing
//!   task in submission order**, independent of scheduling;
//! * a panicking task is caught at the task boundary and surfaced as
//!   [`SimError::TaskPanicked`] — an error, never a hang, a dead worker,
//!   or a torn-down process.
//!
//! # Nesting
//!
//! A task may itself submit a batch (a sweep load point fanning out
//! per-channel tasks). The engine never blocks a thread that still has
//! runnable work of its own: while a batch is outstanding, the
//! submitting thread **helps** — it executes its own batch's queued
//! tasks — and only sleeps when every one of them is claimed by another
//! worker. Progress is therefore guaranteed at any nesting depth with
//! any pool size, and nested fan-out shares the one pool instead of
//! oversubscribing the machine.
//!
//! # Configuration
//!
//! The process-wide pool is built lazily on first use with
//! [`default_workers`] threads (the `RECNMP_WORKERS` environment
//! variable, else `std::thread::available_parallelism`). Binaries
//! pin it with [`set_global_workers`] (the `--workers N` flag) before
//! first use; tests run closures against private pools of any size via
//! [`with_pool`].
//!
//! # Examples
//!
//! ```
//! use recnmp_exec::{current, ExecPool, with_pool};
//!
//! // Submission-order collection regardless of completion order.
//! let pool = ExecPool::new(2).unwrap();
//! let results = with_pool(&pool, || {
//!     current().run_vec((0..8u64).map(|i| move || Ok(i * i)).collect())
//! })
//! .unwrap();
//! assert_eq!(results, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::cell::{RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

use recnmp_types::{ConfigError, SimError};

/// A fixed-size deterministic worker pool.
///
/// `workers == 1` is the serial reference engine: no threads are
/// spawned and every task runs inline on the submitting thread, in
/// submission order. `workers >= 2` spawns exactly `workers` OS
/// threads that live for the pool's lifetime; submitting threads
/// additionally help run their own outstanding batches, so no thread
/// ever idles while holding unfinished work.
pub struct ExecPool {
    core: Arc<PoolCore>,
    handles: Vec<JoinHandle<()>>,
}

impl ExecPool {
    /// Builds a pool of exactly `workers` workers.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `workers` is zero.
    pub fn new(workers: usize) -> Result<Self, ConfigError> {
        if workers == 0 {
            return Err(ConfigError::new("workers", "must be positive"));
        }
        let core = Arc::new(PoolCore {
            workers,
            shared: Mutex::new(Shared {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            progress: Condvar::new(),
        });
        let handles = if workers == 1 {
            Vec::new()
        } else {
            (0..workers)
                .map(|i| {
                    let core = Arc::clone(&core);
                    std::thread::Builder::new()
                        .name(format!("recnmp-exec-{i}"))
                        .spawn(move || worker_loop(&core))
                        .expect("spawning pool worker")
                })
                .collect()
        };
        Ok(Self { core, handles })
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.core.workers
    }

    /// OS threads this pool actually spawned: `workers` for a parallel
    /// pool, zero for the inline single-worker engine. The simulated
    /// topology (channel count, sweep points) never changes this.
    pub fn spawned_threads(&self) -> usize {
        self.handles.len()
    }

    /// A cloneable submission handle onto this pool.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle {
            core: Arc::clone(&self.core),
        }
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        {
            let mut sh = self.core.lock();
            sh.shutdown = true;
        }
        self.core.job_ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPool")
            .field("workers", &self.core.workers)
            .field("spawned_threads", &self.handles.len())
            .finish()
    }
}

/// A submission handle onto an [`ExecPool`] — what call sites obtain
/// from [`current`] and run batches through.
#[derive(Clone)]
pub struct PoolHandle {
    core: Arc<PoolCore>,
}

impl PoolHandle {
    /// The worker count of the underlying pool.
    pub fn workers(&self) -> usize {
        self.core.workers
    }

    /// Runs every task in `batch`, filling its result slots in
    /// submission order. On return the batch's tasks are consumed and
    /// [`Batch::drain`] yields one result per task.
    ///
    /// Single-task batches and single-worker pools run inline on the
    /// calling thread; otherwise tasks are queued on the shared pool
    /// and the calling thread helps execute them until all complete.
    pub fn run_batch<T, F>(&self, batch: &mut Batch<F, T>)
    where
        F: FnOnce() -> Result<T, SimError> + Send,
        T: Send,
    {
        let n = batch.tasks.len();
        assert_eq!(
            batch.results.len(),
            n,
            "drain() the previous run's results before running again"
        );
        if n == 0 {
            return;
        }
        if self.core.workers == 1 || n == 1 {
            for i in 0..n {
                let task = take_task(&batch.tasks[i]);
                set_result(&batch.results[i], run_task(task, i));
            }
        } else {
            // The batch state lives on this stack frame; `run_batch`
            // does not return until `remaining` hits zero, i.e. until
            // every worker is done touching it (see `run_job`).
            let state = BatchState {
                tasks: batch.tasks.as_ptr(),
                results: batch.results.as_ptr(),
                remaining: AtomicUsize::new(n),
            };
            let batch_ptr = (&raw const state).cast::<()>();
            {
                let mut sh = self.core.lock();
                for index in 0..n {
                    sh.jobs.push_back(Job {
                        batch: batch_ptr,
                        index,
                        run: run_job::<F, T>,
                    });
                }
            }
            self.core.job_ready.notify_all();
            help_until_done(&self.core, batch_ptr, &state.remaining);
        }
        batch.tasks.clear();
    }

    /// Convenience wrapper: runs `tasks` through a throwaway [`Batch`]
    /// and returns the successful results in submission order, or the
    /// first failing task's error (by submission index).
    ///
    /// All tasks run to completion even when one fails, so backend
    /// state advances identically for every worker count.
    ///
    /// # Errors
    ///
    /// The first [`SimError`] in submission order, including
    /// [`SimError::TaskPanicked`] for a task that panicked.
    pub fn run_vec<T, F>(&self, tasks: Vec<F>) -> Result<Vec<T>, SimError>
    where
        F: FnOnce() -> Result<T, SimError> + Send,
        T: Send,
    {
        let mut batch = Batch::with_capacity(tasks.len());
        for f in tasks {
            batch.push(f);
        }
        self.run_batch(&mut batch);
        batch.drain().collect()
    }
}

impl std::fmt::Debug for PoolHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolHandle")
            .field("workers", &self.core.workers)
            .finish()
    }
}

/// Reusable task/result storage for one batch submission.
///
/// Capacities persist across runs: push tasks, [`run`](PoolHandle::run_batch)
/// them, [`drain`](Batch::drain) the results, repeat — after the first
/// warm-up round the submit → execute → collect cycle performs no
/// allocations (guarded by `tests/alloc_steady_state.rs`).
pub struct Batch<F, T> {
    tasks: Vec<UnsafeCell<Option<F>>>,
    results: Vec<UnsafeCell<Option<Result<T, SimError>>>>,
}

impl<F, T> Batch<F, T> {
    /// An empty batch.
    pub fn new() -> Self {
        Self {
            tasks: Vec::new(),
            results: Vec::new(),
        }
    }

    /// An empty batch with room for `n` tasks.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            tasks: Vec::with_capacity(n),
            results: Vec::with_capacity(n),
        }
    }

    /// Queues one task for the next run.
    ///
    /// # Panics
    ///
    /// Panics when the previous run's results have not been drained.
    pub fn push(&mut self, task: F) {
        assert_eq!(
            self.results.len(),
            self.tasks.len(),
            "drain() the previous run's results before pushing new tasks"
        );
        self.tasks.push(UnsafeCell::new(Some(task)));
        self.results.push(UnsafeCell::new(None));
    }

    /// Pending (not yet run) tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no tasks are pending.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Yields the completed run's results in submission order,
    /// releasing the storage for reuse (capacity is retained).
    pub fn drain(&mut self) -> impl Iterator<Item = Result<T, SimError>> + '_ {
        self.results
            .drain(..)
            .map(|cell| cell.into_inner().expect("batch result missing"))
    }
}

impl<F, T> Default for Batch<F, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F, T> std::fmt::Debug for Batch<F, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batch")
            .field("tasks", &self.tasks.len())
            .field("results", &self.results.len())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Pool internals.
// ---------------------------------------------------------------------

struct PoolCore {
    workers: usize,
    shared: Mutex<Shared>,
    /// Workers sleep here when the queue is empty.
    job_ready: Condvar,
    /// Batch submitters sleep here while stolen tasks finish.
    progress: Condvar,
}

impl PoolCore {
    /// Locks the queue, surviving poisoning: the engine never panics
    /// while holding the lock (tasks run outside it, unwind-caught), so
    /// a poisoned mutex can only mean a task panicked elsewhere — the
    /// queue state itself is always consistent.
    fn lock(&self) -> MutexGuard<'_, Shared> {
        self.shared.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

struct Shared {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// One queued task: a type-erased pointer to its batch's stack-held
/// state plus the submission index it owns.
#[derive(Clone, Copy)]
struct Job {
    batch: *const (),
    index: usize,
    run: unsafe fn(*const (), usize, &PoolCore),
}

// SAFETY: the batch pointer targets a `BatchState` that the submitting
// thread keeps alive (blocking in `run_batch`) until every job of the
// batch has completed, and the queue hands each (batch, index) pair to
// exactly one thread, which is the only toucher of that index's cells.
unsafe impl Send for Job {}

/// Stack-held shared state of one in-flight parallel batch.
struct BatchState<F, T> {
    tasks: *const UnsafeCell<Option<F>>,
    results: *const UnsafeCell<Option<Result<T, SimError>>>,
    remaining: AtomicUsize,
}

fn take_task<F>(cell: &UnsafeCell<Option<F>>) -> F {
    // SAFETY: the queue yields each index to exactly one claimant, and
    // the inline path is single-threaded; no other reference exists.
    unsafe { (*cell.get()).take() }.expect("task claimed twice")
}

fn set_result<T>(cell: &UnsafeCell<Option<Result<T, SimError>>>, result: Result<T, SimError>) {
    // SAFETY: same exclusive-claim argument as `take_task`; the
    // submitter only reads the slot after observing `remaining == 0`.
    unsafe { *cell.get() = Some(result) };
}

/// Runs one task, converting a panic into [`SimError::TaskPanicked`].
fn run_task<T>(task: impl FnOnce() -> Result<T, SimError>, index: usize) -> Result<T, SimError> {
    catch_unwind(AssertUnwindSafe(task)).unwrap_or_else(|payload| {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        Err(SimError::TaskPanicked {
            task: index,
            message,
        })
    })
}

/// Executes job `index` of the batch behind `batch` and signals the
/// submitter. Monomorphized per task type; reached only through the
/// type-erased `Job::run` pointer.
unsafe fn run_job<F, T>(batch: *const (), index: usize, core: &PoolCore)
where
    F: FnOnce() -> Result<T, SimError> + Send,
    T: Send,
{
    // SAFETY: `run_batch` keeps the state alive until `remaining == 0`,
    // and this thread exclusively owns `index` (see `Job`'s Send proof).
    let state = unsafe { &*batch.cast::<BatchState<F, T>>() };
    let task = take_task(unsafe { &*state.tasks.add(index) });
    let result = run_task(task, index);
    set_result(unsafe { &*state.results.add(index) }, result);
    // Decrement under the queue lock so a submitter that checks the
    // counter under the same lock can never miss the final wakeup.
    let sh = core.lock();
    state.remaining.fetch_sub(1, Ordering::AcqRel);
    drop(sh);
    core.progress.notify_all();
}

/// The submitting thread's wait loop: run own-batch jobs while any are
/// still queued, then sleep until workers finish the stolen ones.
fn help_until_done(core: &PoolCore, batch: *const (), remaining: &AtomicUsize) {
    loop {
        let job = {
            let mut sh = core.lock();
            match sh.jobs.iter().position(|j| j.batch == batch) {
                Some(pos) => sh.jobs.remove(pos),
                None => None,
            }
        };
        if let Some(j) = job {
            // SAFETY: popping the queue entry is the exclusive claim.
            unsafe { (j.run)(j.batch, j.index, core) };
            continue;
        }
        let mut sh = core.lock();
        while remaining.load(Ordering::Acquire) != 0 {
            sh = core
                .progress
                .wait(sh)
                .unwrap_or_else(PoisonError::into_inner);
        }
        return;
    }
}

fn worker_loop(core: &Arc<PoolCore>) {
    // Nested submissions from tasks running on this worker reuse the
    // owning pool instead of falling back to the global one.
    CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(core)));
    loop {
        let job = {
            let mut sh = core.lock();
            loop {
                if let Some(j) = sh.jobs.pop_front() {
                    break Some(j);
                }
                if sh.shutdown {
                    break None;
                }
                sh = core
                    .job_ready
                    .wait(sh)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            // SAFETY: popping the queue entry is the exclusive claim.
            Some(j) => unsafe { (j.run)(j.batch, j.index, core) },
            None => return,
        }
    }
}

// ---------------------------------------------------------------------
// Pool selection: thread-local override, then the process-wide pool.
// ---------------------------------------------------------------------

thread_local! {
    static CURRENT: RefCell<Option<Arc<PoolCore>>> = const { RefCell::new(None) };
}

static GLOBAL: OnceLock<ExecPool> = OnceLock::new();
static REQUESTED_WORKERS: OnceLock<usize> = OnceLock::new();

/// The worker count the process-wide pool is built with on first use:
/// the `RECNMP_WORKERS` environment variable when set and valid, else
/// `std::thread::available_parallelism` (1 when unknown).
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("RECNMP_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Pins the process-wide pool to `workers` workers (the `--workers N`
/// binary flag). Must be called before the global pool's first use.
///
/// # Errors
///
/// Returns a [`ConfigError`] when `workers` is zero, the global pool is
/// already running, or a different count was already requested.
pub fn set_global_workers(workers: usize) -> Result<(), ConfigError> {
    if workers == 0 {
        return Err(ConfigError::new("workers", "must be positive"));
    }
    if GLOBAL.get().is_some() {
        return Err(ConfigError::new(
            "workers",
            "the global pool is already running; set the worker count before first use",
        ));
    }
    if REQUESTED_WORKERS.set(workers).is_err()
        && *REQUESTED_WORKERS.get().expect("just set") != workers
    {
        return Err(ConfigError::new(
            "workers",
            "a different global worker count was already requested",
        ));
    }
    Ok(())
}

/// The pool the current thread submits to: the innermost [`with_pool`]
/// override or owning worker pool, else the process-wide pool (built on
/// first use with [`set_global_workers`]' count, else
/// [`default_workers`]).
pub fn current() -> PoolHandle {
    if let Some(core) = CURRENT.with(|c| c.borrow().clone()) {
        return PoolHandle { core };
    }
    GLOBAL
        .get_or_init(|| {
            let workers = REQUESTED_WORKERS
                .get()
                .copied()
                .unwrap_or_else(default_workers);
            ExecPool::new(workers).expect("positive worker count")
        })
        .handle()
}

/// Runs `f` with [`current`] resolving to `pool` on this thread — how
/// tests compare byte-identical output across worker counts in one
/// process.
pub fn with_pool<R>(pool: &ExecPool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<PoolCore>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(CURRENT.with(|c| c.replace(Some(Arc::clone(&pool.core)))));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn squares(pool: &ExecPool, n: u64) -> Vec<u64> {
        pool.handle()
            .run_vec((0..n).map(|i| move || Ok(i * i)).collect())
            .unwrap()
    }

    #[test]
    fn zero_workers_is_rejected() {
        assert!(ExecPool::new(0).is_err());
    }

    #[test]
    fn single_worker_pool_spawns_no_threads() {
        let pool = ExecPool::new(1).unwrap();
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.spawned_threads(), 0);
        assert_eq!(squares(&pool, 5), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn parallel_pool_spawns_exactly_workers_threads() {
        let pool = ExecPool::new(3).unwrap();
        assert_eq!(pool.workers(), 3);
        assert_eq!(pool.spawned_threads(), 3);
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = ExecPool::new(4).unwrap();
        // Reverse-skewed busywork: late tasks finish first under any
        // parallel schedule; order must still be submission order.
        let tasks: Vec<_> = (0..64u64)
            .map(|i| {
                move || {
                    let mut acc = i;
                    for k in 0..(64 - i) * 500 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                    }
                    std::hint::black_box(acc);
                    Ok(i)
                }
            })
            .collect();
        let out = pool.handle().run_vec(tasks).unwrap();
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn worker_counts_agree_bytewise() {
        let one = squares(&ExecPool::new(1).unwrap(), 40);
        let two = squares(&ExecPool::new(2).unwrap(), 40);
        let eight = squares(&ExecPool::new(8).unwrap(), 40);
        assert_eq!(one, two);
        assert_eq!(one, eight);
    }

    #[test]
    fn panicking_task_surfaces_as_error_not_hang() {
        for workers in [1, 4] {
            let pool = ExecPool::new(workers).unwrap();
            let tasks: Vec<Box<dyn FnOnce() -> Result<u64, SimError> + Send>> = vec![
                Box::new(|| Ok(1)),
                Box::new(|| panic!("poisoned task")),
                Box::new(|| Ok(3)),
            ];
            let err = pool.handle().run_vec(tasks).unwrap_err();
            match err {
                SimError::TaskPanicked { task, message } => {
                    assert_eq!(task, 1);
                    assert!(message.contains("poisoned task"));
                }
                other => panic!("expected TaskPanicked, got {other}"),
            }
            // The pool survives the poisoned batch.
            assert_eq!(squares(&pool, 3), vec![0, 1, 4]);
        }
    }

    #[test]
    fn first_error_by_submission_index_wins() {
        let pool = ExecPool::new(4).unwrap();
        let ran = Arc::new(AtomicU64::new(0));
        let tasks: Vec<_> = (0..16u64)
            .map(|i| {
                let ran = Arc::clone(&ran);
                move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    if i % 2 == 1 {
                        Err(SimError::Stalled {
                            cycle: i,
                            pending: 1,
                        })
                    } else {
                        Ok(i)
                    }
                }
            })
            .collect();
        let err = pool.handle().run_vec(tasks).unwrap_err();
        assert_eq!(
            err,
            SimError::Stalled {
                cycle: 1,
                pending: 1
            }
        );
        // Every task ran to completion despite the failures.
        assert_eq!(ran.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn nested_batches_share_the_pool() {
        let pool = ExecPool::new(2).unwrap();
        let out = with_pool(&pool, || {
            current().run_vec(
                (0..6u64)
                    .map(|i| {
                        move || {
                            let inner = current()
                                .run_vec((0..4u64).map(|j| move || Ok(i * 10 + j)).collect())?;
                            Ok(inner.iter().sum::<u64>())
                        }
                    })
                    .collect(),
            )
        })
        .unwrap();
        assert_eq!(out, vec![6, 46, 86, 126, 166, 206]);
    }

    #[test]
    fn batch_storage_is_reusable() {
        let pool = ExecPool::new(2).unwrap();
        let handle = pool.handle();
        let mut batch: Batch<_, u64> = Batch::new();
        for round in 0..3u64 {
            for i in 0..8u64 {
                batch.push(move || Ok(round * 100 + i));
            }
            handle.run_batch(&mut batch);
            let got: Vec<u64> = batch.drain().map(|r| r.unwrap()).collect();
            assert_eq!(got, (0..8).map(|i| round * 100 + i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = ExecPool::new(2).unwrap();
        let out: Vec<u64> = pool
            .handle()
            .run_vec(Vec::<fn() -> Result<u64, SimError>>::new())
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn with_pool_overrides_and_restores() {
        let two = ExecPool::new(2).unwrap();
        with_pool(&two, || {
            assert_eq!(current().workers(), 2);
            let one = ExecPool::new(1).unwrap();
            with_pool(&one, || assert_eq!(current().workers(), 1));
            assert_eq!(current().workers(), 2);
        });
    }

    #[test]
    fn set_global_workers_rejects_zero() {
        assert!(set_global_workers(0).is_err());
    }
}
