//! The SSD-class storage tier: a near-data SLS backend and the tiered
//! cluster that pairs it with DRAM-NMP channels.
//!
//! RecNMP assumes every embedding table fits in channel DRAM; production
//! models do not (multi-TB footprints, ROADMAP item 3). Following RecSSD
//! (PAPERS.md), an SSD with an in-storage SLS reduction unit can serve
//! the cold tail directly from flash: the host submits index lists, the
//! device reads the touched pages, pools vectors in controller DRAM, and
//! returns only the pooled sums over the link — so flash bandwidth is
//! spent on pages, not on shipping raw vectors to the host.
//!
//! * [`SsdNmpBackend`] — one SSD unit as an [`SlsBackend`]: flash
//!   channel/die parallelism, page-granular reads, a device-DRAM page
//!   buffer with deterministic LRU, an in-storage reduction unit, and a
//!   host link ([`SsdNmpConfig`] holds the geometry and latencies);
//! * [`TieredCluster`] — DRAM-NMP channels and SSD units behind one
//!   combined [`SlsBackend`] server space (DRAM channels first, SSD
//!   units after), the execution target of
//!   `TieredPlacementPlan`-directed serving.

pub mod ssd;
pub mod tiered_cluster;

pub use ssd::{SsdNmpBackend, SsdNmpConfig};
pub use tiered_cluster::TieredCluster;

pub use recnmp_backend::SlsBackend;
