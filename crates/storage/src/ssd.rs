//! One SSD unit with an in-storage SLS reduction engine.
//!
//! The model is analytic, not cycle-stepped: every latency source is a
//! deterministic integer timeline (per-die flash-array occupancy, per
//! flash-channel bus occupancy, the shared reduction pipeline, the host
//! link), all in DDR4-2400 cycles like the rest of the workspace, so an
//! SSD run composes directly with DRAM-channel runs inside one serving
//! schedule.
//!
//! The read path, per lookup:
//!
//! 1. the lookup's physical address names a flash *page*
//!    (`addr / page_bytes`); pages stripe across dies
//!    (`page mod dies`), dies stripe across flash channels;
//! 2. a page resident in the device-DRAM buffer is a *hit*: the vector
//!    is read from controller DRAM in [`buffer_read_cycles`];
//! 3. a miss occupies the die for the array read ([`read_latency`], tR)
//!    and then the die's flash-channel bus for the page transfer
//!    ([`channel_bus_cycles_per_page`]), landing the page in the buffer
//!    (deterministic LRU eviction);
//! 4. the pooling's vectors stream through the shared reduction unit
//!    ([`reduce_bytes_per_cycle`]); only the pooled sum crosses the host
//!    link ([`link_bytes_per_cycle`], after one [`link_latency`] command
//!    submission per run).
//!
//! [`buffer_read_cycles`]: SsdNmpConfig::buffer_read_cycles
//! [`read_latency`]: SsdNmpConfig::read_latency
//! [`channel_bus_cycles_per_page`]: SsdNmpConfig::channel_bus_cycles_per_page
//! [`reduce_bytes_per_cycle`]: SsdNmpConfig::reduce_bytes_per_cycle
//! [`link_bytes_per_cycle`]: SsdNmpConfig::link_bytes_per_cycle
//! [`link_latency`]: SsdNmpConfig::link_latency

use std::collections::BTreeMap;

use recnmp_backend::{RunReport, SlsBackend, SlsTrace};
use recnmp_cache::CacheStats;
use recnmp_types::{ByteSize, ConfigError, Cycle, SimError};
use serde::{Deserialize, Serialize};

/// Geometry and latency parameters of one SSD unit.
///
/// The defaults model a fast NVMe TLC drive with SLC-mode read pages:
/// 4 flash channels x 4 dies, 16 KiB pages, 30 us array reads, a
/// 2.4 GB/s ONFI bus per channel, a 64 MiB controller-DRAM page buffer,
/// an 8 B/cycle reduction pipeline, and a ~4 GB/s host link — all
/// expressed at the 1.2 GHz DDR4-2400 clock (1200 cycles = 1 us).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SsdNmpConfig {
    /// Independent flash channels in the unit.
    pub channels: usize,
    /// Flash dies per channel (tR parallelism within a channel).
    pub dies_per_channel: usize,
    /// Flash page size — the read granule.
    pub page_bytes: ByteSize,
    /// Flash array read time per page (tR), in cycles.
    pub read_latency: Cycle,
    /// Cycles one page occupies its flash-channel bus.
    pub channel_bus_cycles_per_page: Cycle,
    /// Device-DRAM page buffer capacity, in pages.
    pub buffer_pages: usize,
    /// Cycles to read one vector out of a buffered page.
    pub buffer_read_cycles: Cycle,
    /// Throughput of the in-storage SLS reduction unit.
    pub reduce_bytes_per_cycle: u64,
    /// One-way command-submission latency of the host link, charged once
    /// per run.
    pub link_latency: Cycle,
    /// Host-link payload throughput (pooled sums out).
    pub link_bytes_per_cycle: u64,
}

impl Default for SsdNmpConfig {
    fn default() -> Self {
        Self {
            channels: 4,
            dies_per_channel: 4,
            page_bytes: ByteSize::kib(16),
            read_latency: 36_000,               // 30 us tR
            channel_bus_cycles_per_page: 8_192, // 16 KiB at 2 B/cycle
            buffer_pages: 4_096,                // 64 MiB of controller DRAM
            buffer_read_cycles: 240,            // 200 ns controller-DRAM hit
            reduce_bytes_per_cycle: 8,
            link_latency: 6_000,     // 5 us submission
            link_bytes_per_cycle: 4, // ~4.8 GB/s effective link
        }
    }
}

impl SsdNmpConfig {
    /// Total flash dies in the unit.
    pub fn dies(&self) -> usize {
        self.channels * self.dies_per_channel
    }

    fn validate(&self) -> Result<(), ConfigError> {
        let positive: [(&str, u64); 6] = [
            ("channels", self.channels as u64),
            ("dies_per_channel", self.dies_per_channel as u64),
            ("page_bytes", self.page_bytes.get()),
            ("buffer_pages", self.buffer_pages as u64),
            ("reduce_bytes_per_cycle", self.reduce_bytes_per_cycle),
            ("link_bytes_per_cycle", self.link_bytes_per_cycle),
        ];
        for (field, v) in positive {
            if v == 0 {
                return Err(ConfigError::new(
                    "ssd-nmp",
                    format!("{field} must be positive"),
                ));
            }
        }
        Ok(())
    }
}

/// One SSD unit serving SLS traces with in-storage reduction.
///
/// Hardware state — the die/bus/link timelines and the page buffer —
/// persists across runs (a warm buffer stays warm), while every
/// [`RunReport`] covers one call only, per the [`SlsBackend`] contract.
///
/// # Examples
///
/// ```
/// use recnmp_backend::SlsBackend;
/// use recnmp_storage::SsdNmpBackend;
/// use recnmp_trace::{EmbeddingTableSpec, IndexDistribution, TraceGenerator};
/// use recnmp_types::{PhysAddr, TableId};
///
/// let spec = EmbeddingTableSpec::new(100_000, 128);
/// let batch = TraceGenerator::new(TableId::new(0), spec, IndexDistribution::Uniform, 7)
///     .batch(4, 8);
/// let trace = recnmp_backend::SlsTrace::from_batches(
///     std::slice::from_ref(&batch),
///     &mut |_, row| PhysAddr::new(row * 128),
/// );
/// let mut ssd = SsdNmpBackend::with_defaults().unwrap();
/// let report = ssd.run(&trace);
/// assert_eq!(report.insts, 32); // conservation
/// assert!(report.total_cycles > 0);
/// ```
#[derive(Debug)]
pub struct SsdNmpBackend {
    cfg: SsdNmpConfig,
    /// Device clock: completion time of the last finished run.
    now: Cycle,
    /// Per-die flash-array occupancy.
    die_free: Vec<Cycle>,
    /// Per-flash-channel bus occupancy.
    chan_free: Vec<Cycle>,
    /// Shared reduction-pipeline occupancy.
    reduce_free: Cycle,
    /// Host-link occupancy.
    link_free: Cycle,
    /// Buffer residency: page -> last-use tick.
    resident: BTreeMap<u64, u64>,
    /// Recency order: last-use tick -> page (LRU = smallest tick).
    recency: BTreeMap<u64, u64>,
    /// Monotonic access tick driving the LRU order.
    tick: u64,
}

impl SsdNmpBackend {
    /// Builds an SSD unit.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when a geometry or throughput field is
    /// zero.
    pub fn new(cfg: SsdNmpConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(Self {
            now: 0,
            die_free: vec![0; cfg.dies()],
            chan_free: vec![0; cfg.channels],
            reduce_free: 0,
            link_free: 0,
            resident: BTreeMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            cfg,
        })
    }

    /// Builds an SSD unit with the reference configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the default configuration is invalid
    /// (it is not).
    pub fn with_defaults() -> Result<Self, ConfigError> {
        Self::new(SsdNmpConfig::default())
    }

    /// The unit's configuration.
    pub fn config(&self) -> &SsdNmpConfig {
        &self.cfg
    }

    /// Pages currently resident in the device-DRAM buffer.
    pub fn buffered_pages(&self) -> usize {
        self.resident.len()
    }

    /// Reads the page holding `addr`, returning when its data is in the
    /// device-DRAM buffer, and counts the hit/miss/eviction in `stats`.
    fn access_page(&mut self, page: u64, at: Cycle, stats: &mut CacheStats) -> Cycle {
        self.tick += 1;
        if let Some(old) = self.resident.insert(page, self.tick) {
            self.recency.remove(&old);
            self.recency.insert(self.tick, page);
            stats.hits += 1;
            return at + self.cfg.buffer_read_cycles;
        }
        stats.misses += 1;
        let die = (page % self.cfg.dies() as u64) as usize;
        let chan = die % self.cfg.channels;
        let array_start = at.max(self.die_free[die]);
        let array_done = array_start + self.cfg.read_latency;
        self.die_free[die] = array_done;
        let bus_start = array_done.max(self.chan_free[chan]);
        let done = bus_start + self.cfg.channel_bus_cycles_per_page;
        self.chan_free[chan] = done;
        // Install under LRU: evict the least-recently-used page first
        // (the resident map already holds the new page).
        if self.resident.len() > self.cfg.buffer_pages {
            let (&t, &victim) = self.recency.iter().next().expect("buffer is non-empty");
            self.recency.remove(&t);
            self.resident.remove(&victim);
            stats.evictions += 1;
        }
        self.recency.insert(self.tick, page);
        done
    }
}

impl SlsBackend for SsdNmpBackend {
    fn name(&self) -> &str {
        "ssd-nmp"
    }

    /// Serves `trace` entirely in-storage: page reads fan out over
    /// dies/channels, each pooling reduces through the shared pipeline,
    /// and pooled sums stream out over the link. `total_cycles` is
    /// first-command to last-sum-delivered.
    fn try_run(&mut self, trace: &SlsTrace) -> Result<RunReport, SimError> {
        let start = self.now;
        let submit = start + self.cfg.link_latency;
        let mut stats = CacheStats::new();
        let mut last_done = submit;
        let mut insts = 0u64;
        let mut alu_adds = 0u64;
        let mut io_bytes = 0u64;
        for tb in &trace.batches {
            let vb = tb.batch.spec.vector_bytes;
            for pooling in &tb.addrs {
                if pooling.is_empty() {
                    continue;
                }
                let mut gathered = submit;
                for addr in pooling {
                    let page = addr.get() / self.cfg.page_bytes.get();
                    gathered = gathered.max(self.access_page(page, submit, &mut stats));
                }
                let reduce_cycles =
                    (pooling.len() as u64 * vb).div_ceil(self.cfg.reduce_bytes_per_cycle);
                let reduce_start = gathered.max(self.reduce_free);
                let reduced = reduce_start + reduce_cycles;
                self.reduce_free = reduced;
                let link_start = reduced.max(self.link_free);
                let done = link_start + vb.div_ceil(self.cfg.link_bytes_per_cycle);
                self.link_free = done;
                last_done = last_done.max(done);
                insts += pooling.len() as u64;
                // Pooling n vectors of f floats takes (n-1)*f adds.
                alu_adds += (pooling.len() as u64 - 1) * (vb / 4);
                // 8-byte index command in per lookup, one pooled sum out.
                io_bytes += pooling.len() as u64 * 8 + vb;
            }
        }
        self.now = last_done;
        // Flash reads move whole pages into the buffer.
        let gathered_bytes = stats.misses * self.cfg.page_bytes.get();
        Ok(RunReport {
            system: self.name().into(),
            total_cycles: last_done - start,
            insts,
            cache: stats,
            gathered_bytes,
            io_bytes,
            alu_adds,
            ..RunReport::default()
        })
    }
}

/// Rough flash-side service floor for `lookups` all-miss lookups: the
/// array reads pipeline over the dies, the page transfers over the
/// channel busses. Used by tests as a lower-bound sanity check.
#[cfg(test)]
fn all_miss_floor(cfg: &SsdNmpConfig, lookups: u64) -> Cycle {
    let per_die = lookups.div_ceil(cfg.dies() as u64);
    let per_chan = lookups.div_ceil(cfg.channels as u64);
    (per_die * cfg.read_latency).max(per_chan * cfg.channel_bus_cycles_per_page)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_trace::{EmbeddingTableSpec, IndexDistribution, SlsBatch, TraceGenerator};
    use recnmp_types::{PhysAddr, TableId};

    fn trace(tables: u32, batch: usize, pooling: usize, seed: u64) -> SlsTrace {
        let spec = EmbeddingTableSpec::new(1 << 20, 128);
        let batches: Vec<SlsBatch> = (0..tables)
            .map(|t| {
                TraceGenerator::new(
                    TableId::new(t),
                    spec,
                    IndexDistribution::Uniform,
                    seed + t as u64,
                )
                .batch(batch, pooling)
            })
            .collect();
        SlsTrace::from_batches(&batches, &mut |t, row| {
            PhysAddr::new(((t as u64) << 32) | (row * 128))
        })
    }

    #[test]
    fn conserves_lookups_and_is_deterministic() {
        let t = trace(4, 4, 8, 7);
        let mut a = SsdNmpBackend::with_defaults().unwrap();
        let mut b = SsdNmpBackend::with_defaults().unwrap();
        let ra = a.run(&t);
        let rb = b.run(&t);
        assert_eq!(ra.insts, t.total_lookups());
        assert_eq!(ra, rb, "fresh units must agree bit-for-bit");
        assert_eq!(ra.cache.hits + ra.cache.misses, ra.insts);
        assert_eq!(
            ra.gathered_bytes,
            ra.cache.misses * a.config().page_bytes.get()
        );
    }

    #[test]
    fn buffer_warms_across_runs() {
        // The same working set twice: the second run hits the buffer and
        // finishes far faster than the first.
        let t = trace(1, 8, 8, 3);
        let mut ssd = SsdNmpBackend::with_defaults().unwrap();
        let cold = ssd.run(&t);
        let warm = ssd.run(&t);
        assert_eq!(cold.insts, warm.insts);
        assert!(warm.cache.hits > cold.cache.hits);
        assert!(
            warm.total_cycles * 2 < cold.total_cycles,
            "warm {} vs cold {}",
            warm.total_cycles,
            cold.total_cycles
        );
    }

    #[test]
    fn cold_run_respects_flash_pipeline_floor() {
        let t = trace(4, 8, 8, 11);
        let mut ssd = SsdNmpBackend::with_defaults().unwrap();
        let r = ssd.run(&t);
        // With 1M-row tables and uniform indices nearly every lookup is a
        // distinct page: the run cannot beat the die/bus pipeline floor
        // for its actual miss count.
        assert!(r.cache.misses > r.insts / 2);
        let floor = all_miss_floor(ssd.config(), r.cache.misses);
        assert!(
            r.total_cycles >= floor,
            "{} cycles beats the {floor}-cycle flash floor",
            r.total_cycles
        );
    }

    #[test]
    fn eviction_keeps_buffer_bounded() {
        let cfg = SsdNmpConfig {
            buffer_pages: 16,
            ..Default::default()
        };
        let mut ssd = SsdNmpBackend::new(cfg).unwrap();
        let t = trace(2, 8, 16, 5);
        let r = ssd.run(&t);
        assert!(ssd.buffered_pages() <= 16);
        assert!(r.cache.evictions > 0);
    }

    #[test]
    fn in_storage_reduction_keeps_link_traffic_small() {
        let t = trace(2, 4, 16, 9);
        let mut ssd = SsdNmpBackend::with_defaults().unwrap();
        let r = ssd.run(&t);
        // Pooled sums + index commands cross the link; whole pages do
        // not. 16-lookup poolings move 16x128 B of vectors per 128 B sum.
        assert!(r.io_bytes < r.gathered_bytes / 10);
        assert!(r.alu_adds > 0);
    }

    #[test]
    fn rejects_zero_geometry() {
        let no_channels = SsdNmpConfig {
            channels: 0,
            ..Default::default()
        };
        assert!(SsdNmpBackend::new(no_channels).is_err());
        let no_reduce = SsdNmpConfig {
            reduce_bytes_per_cycle: 0,
            ..Default::default()
        };
        assert!(SsdNmpBackend::new(no_reduce).is_err());
    }
}
