//! DRAM-NMP channels plus SSD units behind one dispatch surface.

use recnmp::{RecNmpCluster, RecNmpClusterConfig};
use recnmp_backend::{RunReport, ShardingPolicy, SlsBackend, SlsTrace};
use recnmp_types::{ConfigError, SimError};

use crate::ssd::{SsdNmpBackend, SsdNmpConfig};

/// The two-tier execution system: a [`RecNmpCluster`] of DRAM channels
/// and a set of [`SsdNmpBackend`] units, exposed as one [`SlsBackend`]
/// whose server space concatenates both tiers — DRAM channels are
/// servers `0..dram_servers()`, SSD units follow.
///
/// The numbering matches `TierSpec`'s combined unit space in
/// `recnmp_backend::placement::tiered`, so a `TieredPlacementPlan`'s
/// unit picks are directly dispatchable via
/// [`try_run_on`](SlsBackend::try_run_on).
///
/// # Examples
///
/// ```
/// use recnmp_backend::SlsBackend;
/// use recnmp_storage::TieredCluster;
///
/// let cluster = TieredCluster::reference(4, 2).unwrap();
/// assert_eq!(cluster.server_count(), 6);
/// assert_eq!(cluster.dram_servers(), 4);
/// ```
#[derive(Debug)]
pub struct TieredCluster {
    name: String,
    dram: RecNmpCluster,
    ssds: Vec<SsdNmpBackend>,
}

impl TieredCluster {
    /// Builds the tiered system from an existing DRAM cluster and SSD
    /// units.
    pub fn new(dram: RecNmpCluster, ssds: Vec<SsdNmpBackend>) -> Self {
        Self {
            name: format!("tiered[{}+{}]", dram.channels(), ssds.len()),
            dram,
            ssds,
        }
    }

    /// Builds the reference geometry: `dram_channels` Table-I RecNMP
    /// channels (1 DIMM x 2 ranks each) plus `ssd_units` default-config
    /// SSD units.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid geometry.
    pub fn reference(dram_channels: usize, ssd_units: usize) -> Result<Self, ConfigError> {
        let config = RecNmpClusterConfig::builder()
            .channels(dram_channels)
            .dimms(1)
            .ranks_per_dimm(2)
            .build()?;
        let dram = RecNmpCluster::new(config)?;
        let ssds = (0..ssd_units)
            .map(|_| SsdNmpBackend::new(SsdNmpConfig::default()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::new(dram, ssds))
    }

    /// Servers belonging to the DRAM tier (`0..dram_servers()`).
    pub fn dram_servers(&self) -> usize {
        self.dram.server_count()
    }

    /// Number of SSD units.
    pub fn ssd_units(&self) -> usize {
        self.ssds.len()
    }

    /// The DRAM tier.
    pub fn dram(&self) -> &RecNmpCluster {
        &self.dram
    }

    /// One SSD unit.
    pub fn ssd(&self, i: usize) -> &SsdNmpBackend {
        &self.ssds[i]
    }
}

impl SlsBackend for TieredCluster {
    /// `"tiered[D+S]"` for D DRAM channels and S SSD units.
    fn name(&self) -> &str {
        &self.name
    }

    /// Shards `trace` by table hash across the *combined* server space
    /// and runs every non-empty shard as one task on the deterministic
    /// worker pool — DRAM channels and SSD units are independent
    /// hardware, so both tiers simulate in parallel under the pool's
    /// fixed thread budget. Reports merge in server order regardless of
    /// completion order, byte-identical to the old serial per-server
    /// loop. Tier-aware serving dispatches per unit through
    /// [`try_run_on`](SlsBackend::try_run_on) instead.
    fn try_run(&mut self, trace: &SlsTrace) -> Result<RunReport, SimError> {
        let mut shards = trace
            .shard(self.server_count(), ShardingPolicy::HashByTable)
            .into_iter();
        // Pair every unit of both tiers with its shard, dropping empty
        // shards (their units contribute nothing to the merged report).
        let mut jobs: Vec<(&mut dyn SlsBackend, SlsTrace)> = Vec::new();
        for (channel, shard) in self.dram.channels_mut().iter_mut().zip(shards.by_ref()) {
            if !shard.batches.is_empty() {
                jobs.push((channel, shard));
            }
        }
        for (ssd, shard) in self.ssds.iter_mut().zip(shards) {
            if !shard.batches.is_empty() {
                jobs.push((ssd, shard));
            }
        }
        let tasks: Vec<_> = jobs
            .iter_mut()
            .map(|(unit, shard)| move || unit.try_run(shard))
            .collect();
        let reports = recnmp_exec::current().run_vec(tasks)?;
        let mut merged = RunReport::for_system(self.name.clone());
        for report in reports {
            merged.absorb_parallel(report);
        }
        merged.system = self.name.clone();
        Ok(merged)
    }

    fn server_count(&self) -> usize {
        self.dram.server_count() + self.ssds.len()
    }

    /// Runs `trace` entirely on one unit of either tier: DRAM channels
    /// first, then SSD units.
    ///
    /// # Panics
    ///
    /// Panics when `server >= self.server_count()`.
    fn try_run_on(&mut self, server: usize, trace: &SlsTrace) -> Result<RunReport, SimError> {
        let d = self.dram.server_count();
        if server < d {
            self.dram.try_run_on(server, trace)
        } else {
            assert!(
                server - d < self.ssds.len(),
                "server {server} out of range for {} server(s)",
                self.server_count()
            );
            self.ssds[server - d].try_run(trace)
        }
    }

    /// Runs each shard on its unit (DRAM channel or SSD) as one pool
    /// task, reports in shard order — the fleet node handle for tiered
    /// nodes, identical to the serial default at any worker count.
    fn try_run_shards(&mut self, shards: &[(usize, SlsTrace)]) -> Result<Vec<RunReport>, SimError> {
        assert!(
            shards.windows(2).all(|w| w[0].0 < w[1].0),
            "shards must target strictly increasing units"
        );
        let units = self.server_count();
        let mut slots: Vec<Option<&SlsTrace>> = vec![None; units];
        for (u, shard) in shards {
            assert!(*u < units, "server {u} out of range for {units} server(s)");
            slots[*u] = Some(shard);
        }
        let backends = self
            .dram
            .channels_mut()
            .iter_mut()
            .map(|c| c as &mut dyn SlsBackend)
            .chain(self.ssds.iter_mut().map(|s| s as &mut dyn SlsBackend));
        let tasks: Vec<_> = backends
            .zip(&slots)
            .filter_map(|(unit, slot)| slot.map(|shard| move || unit.try_run(shard)))
            .collect();
        recnmp_exec::current().run_vec(tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_trace::{EmbeddingTableSpec, IndexDistribution, SlsBatch, TraceGenerator};
    use recnmp_types::{PhysAddr, TableId};

    fn trace(tables: u32, seed: u64) -> SlsTrace {
        let spec = EmbeddingTableSpec::new(1 << 18, 128);
        let batches: Vec<SlsBatch> = (0..tables)
            .map(|t| {
                TraceGenerator::new(
                    TableId::new(t),
                    spec,
                    IndexDistribution::Uniform,
                    seed + t as u64,
                )
                .batch(2, 8)
            })
            .collect();
        SlsTrace::from_batches(&batches, &mut |t, row| {
            PhysAddr::new(((t as u64) << 32) | (row * 128))
        })
    }

    #[test]
    fn combined_server_space_conserves_lookups() {
        let t = trace(6, 13);
        let mut cluster = TieredCluster::reference(4, 2).unwrap();
        let r = cluster.run(&t);
        assert_eq!(r.insts, t.total_lookups());
        assert_eq!(cluster.server_count(), 6);
    }

    #[test]
    fn per_server_dispatch_reaches_both_tiers() {
        let t = trace(1, 21);
        let mut cluster = TieredCluster::reference(2, 1).unwrap();
        let on_dram = cluster.try_run_on(0, &t).unwrap();
        let on_ssd = cluster.try_run_on(2, &t).unwrap();
        assert_eq!(on_dram.insts, t.total_lookups());
        assert_eq!(on_ssd.insts, t.total_lookups());
        assert_eq!(on_ssd.system, "ssd-nmp");
        // The cold SSD tier is far slower than a DRAM channel — that gap
        // is the entire premise of tiered placement.
        assert!(on_ssd.total_cycles > 4 * on_dram.total_cycles);
    }

    #[test]
    fn tiered_runs_are_deterministic() {
        let t = trace(6, 5);
        let mut a = TieredCluster::reference(4, 2).unwrap();
        let mut b = TieredCluster::reference(4, 2).unwrap();
        assert_eq!(a.run(&t), b.run(&t));
    }
}
