//! Embedding-trace locality analysis: regenerate the Section II-F study
//! (Figure 7) on the synthetic production-like traces.
//!
//! ```text
//! cargo run --release -p recnmp-sim --example trace_locality
//! ```

use recnmp_cache::{CacheConfig, SetAssocCache};
use recnmp_trace::{production_tables, CombTrace, PageMapper};
use recnmp_types::units::MIB;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Interleave the eight production-like tables (Comb-8) and map their
    // logical addresses through the OS page mapper.
    let gens = production_tables(7);
    let comb = CombTrace::interleave(&gens, 1, 40_000, 3);
    let mut mapper = PageMapper::new(1 << 24, 11);
    let phys: Vec<u64> = comb
        .logical_addrs()
        .map(|l| mapper.translate(l).get())
        .collect();
    println!(
        "trace: {} lookups over {} tables ({} logical footprint)",
        phys.len(),
        comb.num_tables(),
        recnmp_types::units::human_bytes(comb.footprint())
    );

    println!("\ntemporal locality: hit rate vs capacity (64 B lines, 4-way LRU)");
    for mib in [8u64, 16, 32, 64] {
        let mut cache = SetAssocCache::new(CacheConfig::new(mib * MIB, 64, 4))?;
        let rate = cache.run_trace(phys.iter().copied());
        println!("  {:>2} MiB: {:>5.1}%", mib, 100.0 * rate);
    }

    println!("\nspatial locality: hit rate vs line size (16 MiB, 4-way LRU)");
    for line in [64u64, 128, 256, 512] {
        let mut cache = SetAssocCache::new(CacheConfig::new(16 * MIB, line, 4))?;
        let rate = cache.run_trace(phys.iter().copied());
        println!("  {:>3} B lines: {:>5.1}%", line, 100.0 * rate);
    }
    println!(
        "\nPaper: hit rate grows with capacity (temporal reuse) and shrinks with line \
         size (no spatial locality) — the basis for RecNMP's RankCache design."
    );
    Ok(())
}
