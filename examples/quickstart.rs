//! Quickstart: offload one SLS batch to RecNMP and compare against the
//! host DRAM baseline.
//!
//! ```text
//! cargo run --release -p recnmp-sim --example quickstart
//! ```

use recnmp::RecNmpConfig;
use recnmp_sim::speedup::SpeedupEngine;
use recnmp_sim::workload::TraceKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A production-like SLS workload: 8 embedding tables, two windows of
    // 32 poolings x 80 lookups each (the paper's pooling factor).
    let engine = SpeedupEngine::with_workload(TraceKind::Production, 8, 2, 32, 42);
    println!(
        "workload: {} embedding lookups across 8 tables",
        engine.workload().total_lookups()
    );

    // The paper's largest channel: 4 DIMMs x 2 ranks, fully optimized
    // (128 KiB RankCache, table-aware scheduling, hot-entry profiling).
    let config = RecNmpConfig::optimized(4, 2);
    let comparison = engine.compare(&config)?;

    println!(
        "host DRAM baseline : {:.2} cycles/lookup",
        comparison.baseline_cpl
    );
    println!(
        "RecNMP-opt (8-rank): {:.2} cycles/lookup",
        comparison.nmp_cpl
    );
    println!(
        "memory latency speedup: {:.2}x (paper: up to 9.8x)",
        comparison.speedup()
    );
    println!(
        "RankCache hit rate: {:.1}%",
        100.0 * comparison.nmp_report.cache.effective_hit_rate()
    );

    // Energy: the host ships every embedding byte across the DIMM pins;
    // RecNMP returns only pooled sums.
    let dram_params = recnmp_dram::EnergyParams::table1();
    let nmp_params = recnmp::energy::NmpEnergyParams::table1();
    let host_e = recnmp::energy::host_energy(&comparison.baseline_report, &dram_params);
    let nmp_e = recnmp::energy::nmp_energy(&comparison.nmp_report, &dram_params, &nmp_params);
    println!(
        "memory energy: host {:.1} uJ vs RecNMP {:.1} uJ ({:.1}% saving; paper: 45.8%)",
        host_e.total_nj() / 1000.0,
        nmp_e.total_nj() / 1000.0,
        100.0 * recnmp::energy::energy_saving(&host_e, &nmp_e)
    );
    Ok(())
}
