//! Quickstart: run one SLS workload through the unified `SlsBackend` API —
//! host DRAM baseline, RecNMP-opt, and a 4-channel RecNMP cluster — and
//! compare cycles per lookup, energy, and cluster scaling.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use recnmp::cluster::{RecNmpCluster, RecNmpClusterConfig};
use recnmp::{RecNmpConfig, RecNmpSystem, SlsBackend};
use recnmp_baselines::HostBaseline;
use recnmp_sim::speedup::SpeedupEngine;
use recnmp_sim::workload::TraceKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A production-like SLS workload: 8 embedding tables, two windows of
    // 32 poolings x 80 lookups each (the paper's pooling factor).
    let engine = SpeedupEngine::with_workload(TraceKind::Production, 8, 2, 32, 42);
    println!(
        "workload: {} embedding lookups across 8 tables",
        engine.workload().total_lookups()
    );

    // The paper's largest channel: 4 DIMMs x 2 ranks, fully optimized
    // (128 KiB RankCache, table-aware scheduling, hot-entry profiling).
    // Every system serves the *same* physical trace through the one
    // `SlsBackend` entry point.
    let config = RecNmpConfig::optimized(4, 2);
    let trace = engine.trace_for(&config);

    let mut host = HostBaseline::new(config.dimms, config.ranks_per_dimm)?;
    let mut nmp = RecNmpSystem::new(config.clone())?;
    let comparison = engine.compare_backends(&mut host, &mut nmp, &trace);

    println!(
        "host DRAM baseline : {:.2} cycles/lookup",
        comparison.baseline_cpl()
    );
    println!(
        "RecNMP-opt (8-rank): {:.2} cycles/lookup",
        comparison.nmp_cpl()
    );
    println!(
        "memory latency speedup: {:.2}x (paper: up to 9.8x)",
        comparison.speedup()
    );
    println!(
        "RankCache hit rate: {:.1}%",
        100.0 * comparison.nmp.cache.effective_hit_rate()
    );

    // Energy: the host ships every embedding byte across the DIMM pins;
    // RecNMP returns only pooled sums.
    let dram_params = recnmp_dram::EnergyParams::table1();
    let nmp_params = recnmp::energy::NmpEnergyParams::table1();
    let host_e = recnmp::energy::host_energy(&comparison.baseline.dram, &dram_params);
    let nmp_e = recnmp::energy::nmp_energy(&comparison.nmp, &dram_params, &nmp_params);
    println!(
        "memory energy: host {:.1} uJ vs RecNMP {:.1} uJ ({:.1}% saving; paper: 45.8%)",
        host_e.total_nj() / 1000.0,
        nmp_e.total_nj() / 1000.0,
        100.0 * recnmp::energy::energy_saving(&host_e, &nmp_e)
    );

    // Beyond the paper: fan the same workload across a 4-channel RecNMP
    // cluster (hash-by-table sharding) and watch wall-clock drop.
    let cluster_config = RecNmpClusterConfig::builder()
        .channels(4)
        .dimms(4)
        .ranks_per_dimm(2)
        .optimized(true)
        .build()?;
    let mut cluster = RecNmpCluster::new(cluster_config)?;
    let fanned = cluster.run(&trace);
    let single = comparison.nmp.total_cycles;
    println!(
        "cluster scaling: 1 channel {} cycles -> 4 channels {} cycles ({:.2}x)",
        single,
        fanned.total_cycles,
        single as f64 / fanned.total_cycles as f64
    );
    Ok(())
}
