//! Using the DDR4 substrate directly: issue read streams with different
//! access patterns and observe row-buffer behavior and bandwidth.
//!
//! ```text
//! cargo run --release -p recnmp-sim --example ddr4_timing
//! ```

use recnmp_dram::{DramConfig, MemorySystem};
use recnmp_types::rng::DetRng;
use recnmp_types::PhysAddr;

fn run(label: &str, addrs: &[PhysAddr]) -> Result<(), Box<dyn std::error::Error>> {
    let mut mem = MemorySystem::new(DramConfig::table1_baseline())?;
    mem.attach_monitor();
    for a in addrs {
        mem.enqueue_read(*a, 0);
    }
    let done = mem.run_until_idle()?;
    let end = done.iter().map(|c| c.finish_cycle).max().unwrap_or(0);
    let stats = mem.stats();
    println!(
        "{label:<12} {:>6} reads in {:>7} cycles  ({:>5.2} GB/s, row-hit {:>5.1}%, \
         mean latency {:>6.1} cyc, protocol violations: {})",
        done.len(),
        end,
        stats.bandwidth_gbs(end),
        100.0 * stats.row_hit_rate(),
        stats.mean_latency(),
        mem.monitor_violations().len()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("DDR4-2400, 1 DIMM x 2 ranks, FR-FCFS, open page (Table I)\n");

    // Sequential stream: every access after the first hits the open row.
    let sequential: Vec<PhysAddr> = (0..4096u64).map(|i| PhysAddr::new(i * 64)).collect();
    run("sequential", &sequential)?;

    // Random 64-byte reads: the embedding-gather pattern.
    let mut rng = DetRng::seed(1);
    let random: Vec<PhysAddr> = (0..4096)
        .map(|_| PhysAddr::new(rng.below(8 << 30) & !63))
        .collect();
    run("random", &random)?;

    // Single-bank pounding: every read conflicts in one bank.
    let conflict: Vec<PhysAddr> = (0..1024u64)
        .map(|i| PhysAddr::new(i * 8 * 1024 * 1024))
        .collect();
    run("same-bank", &conflict)?;

    println!(
        "\nSequential streams approach the 19.2 GB/s channel peak; random embedding \
         gathers lose bandwidth to activates — the bottleneck RecNMP's rank-level \
         parallelism attacks."
    );
    Ok(())
}
