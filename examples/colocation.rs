//! Co-location study: latency/throughput trade-off of running several
//! recommendation models on one server, with and without RecNMP
//! (the scenario behind Figure 18(c)).
//!
//! ```text
//! cargo run --release -p recnmp-sim --example colocation
//! ```

use recnmp_model::RecModelKind;
use recnmp_sim::colocation::ColocationModel;
use recnmp_sim::workload::TraceKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ColocationModel::table1();
    let sls_speedup = 8.6; // measured by the cycle-level engine at 8 ranks

    for kind in [RecModelKind::Rm1Large, RecModelKind::Rm2Small] {
        let cfg = kind.config();
        println!("\n{} (batch 256, production traces)", kind.name());
        println!(
            "{:>4} {:>14} {:>12} {:>14} {:>12} {:>9}",
            "co", "host lat(ms)", "host qps", "NMP lat(ms)", "NMP qps", "speedup"
        );
        let host = model.curve(&cfg, 256, 8, TraceKind::Production, None);
        let nmp = model.curve(&cfg, 256, 8, TraceKind::Production, Some(sls_speedup));
        for (h, n) in host.iter().zip(&nmp) {
            println!(
                "{:>4} {:>14.2} {:>12.0} {:>14.2} {:>12.0} {:>8.2}x",
                h.co_located,
                h.latency_us / 1000.0,
                h.throughput_qps,
                n.latency_us / 1000.0,
                n.throughput_qps,
                h.latency_us / n.latency_us
            );
        }
    }
    println!(
        "\nCo-location raises throughput at a latency cost; RecNMP shifts the whole \
         curve (paper: 2.8-3.5x for RM1-large, 3.2-4.0x for RM2-small)."
    );
    Ok(())
}
