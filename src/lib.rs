//! Workspace umbrella for the RecNMP reproduction.
//!
//! This crate exists to host the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`; it re-exports the
//! member crates so the examples can be read top-down.

pub use recnmp;
pub use recnmp_backend;
pub use recnmp_baselines;
pub use recnmp_cache;
pub use recnmp_dram;
pub use recnmp_exec;
pub use recnmp_model;
pub use recnmp_sim;
pub use recnmp_trace;
pub use recnmp_types;
