//! Execution-engine conformance: worker count is a pure performance
//! knob.
//!
//! The determinism contract of `recnmp-exec` says a simulation result
//! is a function of the configuration and the trace only — never of
//! how many pool workers happened to run it or how the OS scheduled
//! them. These tests pin that contract at the workspace level:
//! cluster `RunReport`s, tiered-cluster reports and full serving sweep
//! curves are byte-identical across worker counts {1, 2, 8} and across
//! reruns, a 256-channel cluster completes on a 2-thread pool (the
//! thread-per-channel ceiling is gone), and a panicking task surfaces
//! as a `SimError` instead of hanging or tearing down the process.

use recnmp::{RecNmpCluster, RecNmpClusterConfig};
use recnmp_backend::{RunReport, SlsBackend, SlsTrace};
use recnmp_exec::ExecPool;
use recnmp_sim::serving::{
    qps_sweep, ArrivalProcess, DispatchPolicy, QueryShape, ServingMode, SweepCurve,
};
use recnmp_storage::TieredCluster;
use recnmp_trace::{EmbeddingTableSpec, IndexDistribution, SlsBatch, TraceGenerator};
use recnmp_types::{PhysAddr, SimError, TableId};

/// Worker counts the contract is exercised at. 1 is the inline serial
/// engine (zero spawned threads), 2 matches the CI machine, 8
/// oversubscribes it — completion order differs wildly between these,
/// results must not.
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn workload(tables: u32, batch: usize, pooling: usize, seed: u64) -> SlsTrace {
    let batches: Vec<SlsBatch> = (0..tables)
        .map(|t| {
            TraceGenerator::new(
                TableId::new(t),
                EmbeddingTableSpec::dlrm_default(),
                IndexDistribution::Zipf { s: 0.9 },
                seed + t as u64,
            )
            .batch(batch, pooling)
        })
        .collect();
    SlsTrace::from_batches(&batches, &mut |t, row| {
        PhysAddr::new(((t as u64) << 31) ^ (row * 131 * 128))
    })
}

fn cluster(channels: usize) -> RecNmpCluster {
    let config = RecNmpClusterConfig::builder()
        .channels(channels)
        .dimms(1)
        .ranks_per_dimm(2)
        .refresh(false)
        .build()
        .unwrap();
    RecNmpCluster::new(config).unwrap()
}

/// Runs `f` once per worker count in [`WORKER_COUNTS`], twice per
/// count, and asserts every invocation produces the same value with
/// the same `Debug` bytes as the first.
fn assert_invariant_across_pools<T: PartialEq + std::fmt::Debug>(mut f: impl FnMut() -> T) {
    let _serial = THREAD_COUNT_LOCK.lock().unwrap();
    let mut reference: Option<(T, String)> = None;
    for workers in WORKER_COUNTS {
        let pool = ExecPool::new(workers).unwrap();
        for rerun in 0..2 {
            let value = recnmp_exec::with_pool(&pool, &mut f);
            match &reference {
                None => {
                    let bytes = format!("{value:?}");
                    reference = Some((value, bytes));
                }
                Some((first, bytes)) => {
                    assert_eq!(
                        &value, first,
                        "result diverged at workers={workers} rerun={rerun}"
                    );
                    assert_eq!(
                        format!("{value:?}").as_bytes(),
                        bytes.as_bytes(),
                        "Debug bytes diverged at workers={workers} rerun={rerun}"
                    );
                }
            }
        }
    }
}

#[test]
fn cluster_reports_are_byte_identical_across_worker_counts() {
    let trace = workload(16, 4, 40, 91);
    assert_invariant_across_pools(|| -> RunReport {
        let mut c = cluster(8);
        c.run(&trace)
    });
}

#[test]
fn tiered_reports_are_byte_identical_across_worker_counts() {
    let trace = workload(12, 2, 16, 7);
    assert_invariant_across_pools(|| -> RunReport {
        let mut c = TieredCluster::reference(4, 2).unwrap();
        c.run(&trace)
    });
}

#[test]
fn sweep_curves_are_byte_identical_across_worker_counts() {
    // A sweep over a cluster nests batches: each sweep point is a pool
    // task whose backend fans its own per-channel tasks into the same
    // pool. The curve must still be a pure function of seed and config.
    assert_invariant_across_pools(|| -> SweepCurve {
        qps_sweep(
            &mut || Box::new(cluster(4)),
            ServingMode::Queued(DispatchPolicy::LeastOutstanding),
            ArrivalProcess::Poisson,
            QueryShape::new(2, 2, 8),
            &[0.4, 0.8],
            16,
            8,
            0xfeed_f00d,
        )
        .unwrap()
    });
}

/// Serializes the thread-budget test against the other tests in this
/// binary: their short-lived pools would otherwise churn the process
/// thread count while we sample it.
static THREAD_COUNT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Counts this process's OS threads via /proc (Linux is the only
/// supported CI target; elsewhere the check degrades to a no-op).
fn os_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

#[test]
fn many_channel_cluster_runs_within_the_pool_thread_budget() {
    // 256 channels, 2 workers: before the execution engine this run
    // spawned 256 scoped threads; now channel tasks queue onto the
    // fixed pool and the process-wide thread count stays flat.
    let trace = workload(256, 1, 8, 3);
    let _serial = THREAD_COUNT_LOCK.lock().unwrap();
    let pool = ExecPool::new(2).unwrap();
    assert_eq!(pool.spawned_threads(), 2);
    let before = os_threads();
    let report = recnmp_exec::with_pool(&pool, || {
        let mut c = cluster(256);
        c.run(&trace)
    });
    let after = os_threads();
    assert_eq!(report.insts, trace.total_lookups());
    assert_eq!(report.system, "recnmp-cluster[256]");
    assert_eq!(
        before, after,
        "running 256 channels must not spawn threads beyond the pool's"
    );
}

#[test]
fn panicking_task_is_reported_not_hung() {
    let _serial = THREAD_COUNT_LOCK.lock().unwrap();
    for workers in [1usize, 8] {
        let pool = ExecPool::new(workers).unwrap();
        let err = recnmp_exec::with_pool(&pool, || {
            let tasks: Vec<Box<dyn FnOnce() -> Result<u64, SimError> + Send>> = (0..6u64)
                .map(|i| {
                    Box::new(move || {
                        if i == 3 {
                            panic!("poisoned task {i}");
                        }
                        Ok(i)
                    }) as Box<dyn FnOnce() -> Result<u64, SimError> + Send>
                })
                .collect();
            recnmp_exec::current().run_vec(tasks).unwrap_err()
        });
        match err {
            SimError::TaskPanicked { task, message } => {
                assert_eq!(task, 3, "workers={workers}");
                assert!(message.contains("poisoned task 3"), "workers={workers}");
            }
            other => panic!("workers={workers}: expected TaskPanicked, got {other:?}"),
        }
        // The pool survives a poisoned batch: the same handle keeps
        // serving work afterwards.
        let sum: u64 = recnmp_exec::with_pool(&pool, || {
            recnmp_exec::current()
                .run_vec((0..4u64).map(|i| move || Ok(i * i)).collect::<Vec<_>>())
                .unwrap()
                .into_iter()
                .sum()
        });
        assert_eq!(sum, 14);
    }
}
