//! Cross-crate invariants: the NMP datapath computes exactly what the
//! reference SLS operators compute, across opcodes, packings and weights.

use proptest::prelude::*;
use recnmp::datapath::execute_packet;
use recnmp::packet::PacketBuilder;
use recnmp::NmpOpcode;
use recnmp_dram::address::{AddressMapping, Geometry};
use recnmp_model::{EmbeddingTable, QuantizedTable, SlsOp};
use recnmp_trace::{EmbeddingTableSpec, Pooling, SlsBatch};
use recnmp_types::{ModelId, PhysAddr, TableId};

const ROWS: u64 = 256;
const DIMS_SPEC: EmbeddingTableSpec = EmbeddingTableSpec::new(ROWS, 128);

fn opcode_for(op: SlsOp) -> NmpOpcode {
    match op {
        SlsOp::Sum => NmpOpcode::Sum,
        SlsOp::Mean => NmpOpcode::Mean,
        SlsOp::WeightedSum => NmpOpcode::WeightedSum,
        SlsOp::WeightedMean => NmpOpcode::WeightedMean,
    }
}

/// Runs one batch through reference operator and NMP datapath; asserts
/// element-wise closeness (FP32 association differs between the two).
fn check_equivalence(op: SlsOp, batch: &SlsBatch, table: &EmbeddingTable, ranks: usize) {
    let reference = op.execute(table, batch);

    let builder = PacketBuilder::new(
        opcode_for(op),
        16,
        AddressMapping::SkylakeXor,
        Geometry::ddr4_8gb_x8(ranks as u8),
    );
    let mut translate = |row: u64| PhysAddr::new(row * 4096 * 31); // scatter rows
    let packets = builder.build(ModelId::new(0), batch, &mut translate, None);

    let mut fetch = |_t: TableId, row: u64| table.row(row).to_vec();
    let mut outputs: Vec<Vec<f32>> = Vec::new();
    for p in &packets {
        outputs.extend(execute_packet(&p.clone(), ranks, &mut fetch));
    }
    assert_eq!(outputs.len(), reference.len());
    for (got, want) in outputs.iter().zip(&reference) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            let tol = 1e-3 * (1.0 + w.abs());
            assert!((g - w).abs() <= tol, "{g} vs {w} ({op:?})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn datapath_matches_reference_unweighted(
        pools in prop::collection::vec(
            prop::collection::vec(0u64..ROWS, 1..24), 1..6),
        ranks in prop_oneof![Just(1usize), Just(2), Just(8)],
        mean in any::<bool>(),
    ) {
        let table = EmbeddingTable::random(DIMS_SPEC, 77);
        let batch = SlsBatch {
            table: TableId::new(0),
            spec: DIMS_SPEC,
            poolings: pools.into_iter().map(Pooling::unweighted).collect(),
        };
        let op = if mean { SlsOp::Mean } else { SlsOp::Sum };
        check_equivalence(op, &batch, &table, ranks);
    }

    #[test]
    fn datapath_matches_reference_weighted(
        pools in prop::collection::vec(
            prop::collection::vec((0u64..ROWS, -2.0f32..2.0), 1..16), 1..5),
        mean in any::<bool>(),
    ) {
        let table = EmbeddingTable::random(DIMS_SPEC, 78);
        let batch = SlsBatch {
            table: TableId::new(0),
            spec: DIMS_SPEC,
            poolings: pools
                .into_iter()
                .map(|p| {
                    let (idx, w): (Vec<u64>, Vec<f32>) = p.into_iter().unzip();
                    Pooling::weighted(idx, w)
                })
                .collect(),
        };
        let op = if mean { SlsOp::WeightedMean } else { SlsOp::WeightedSum };
        check_equivalence(op, &batch, &table, 2);
    }

    #[test]
    fn quantized_reference_tracks_fp32(
        indices in prop::collection::vec(0u64..ROWS, 1..64),
    ) {
        let table = EmbeddingTable::random(DIMS_SPEC, 79);
        let quant = QuantizedTable::quantize(&table);
        let batch = SlsBatch {
            table: TableId::new(0),
            spec: DIMS_SPEC,
            poolings: vec![Pooling::unweighted(indices.clone())],
        };
        let exact = SlsOp::Sum.execute(&table, &batch);
        let approx = SlsOp::Sum.execute_quantized(&quant, &batch);
        for (e, a) in exact[0].iter().zip(&approx[0]) {
            // Row-wise 8-bit quantization error bound: scale/2 per lookup.
            prop_assert!((e - a).abs() <= indices.len() as f32 * 0.01 + 1e-4);
        }
    }
}

#[test]
fn packet_roundtrip_preserves_wire_format() {
    // Instructions surviving pack/unpack still execute identically.
    let table = EmbeddingTable::random(DIMS_SPEC, 80);
    let batch = SlsBatch {
        table: TableId::new(0),
        spec: DIMS_SPEC,
        poolings: vec![Pooling::unweighted(vec![1, 2, 3, 200])],
    };
    let builder = PacketBuilder::new(
        NmpOpcode::Sum,
        8,
        AddressMapping::SkylakeXor,
        Geometry::ddr4_8gb_x8(2),
    );
    let mut translate = |row: u64| PhysAddr::new(row * 64 * 131);
    let mut packets = builder.build(ModelId::new(0), &batch, &mut translate, None);
    let packet = &mut packets[0];
    for inst in &mut packet.insts {
        let wire = inst.pack();
        *inst = recnmp::NmpInst::unpack(wire).expect("round trip");
    }
    let mut fetch = |_t: TableId, row: u64| table.row(row).to_vec();
    let out = execute_packet(packet, 2, &mut fetch);
    let reference = SlsOp::Sum.execute(&table, &batch);
    for (g, w) in out[0].iter().zip(&reference[0]) {
        assert!((g - w).abs() < 1e-3);
    }
}
