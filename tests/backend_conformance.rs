//! Conformance of every `SlsBackend` implementation: the same physical
//! trace through all four systems (host, TensorDIMM, Chameleon, RecNMP)
//! plus the multi-channel cluster, asserting the shared-work invariants
//! the Figure 16 methodology depends on — identical lookup counts and
//! identical gathered bytes — and the per-run (delta) report contract.

use recnmp::cluster::{RecNmpCluster, RecNmpClusterConfig};
use recnmp::{RecNmpConfig, RecNmpSystem, ShardingPolicy, SlsBackend, SlsTrace};
use recnmp_baselines::{Chameleon, HostBaseline, TensorDimm};
use recnmp_sim::speedup::SpeedupEngine;
use recnmp_sim::workload::TraceKind;

fn quiet(mut cfg: RecNmpConfig) -> RecNmpConfig {
    cfg.refresh = false;
    cfg
}

/// Builds the four single-channel backends at one geometry, all under
/// `cfg`'s refresh setting (matched comparisons share DRAM settings).
fn backends(cfg: &RecNmpConfig) -> Vec<Box<dyn SlsBackend>> {
    let mut dram_cfg = recnmp_dram::DramConfig::with_ranks(cfg.dimms, cfg.ranks_per_dimm);
    dram_cfg.refresh = cfg.refresh;
    vec![
        Box::new(HostBaseline::with_config(dram_cfg).expect("host")),
        Box::new(
            TensorDimm::with_refresh(cfg.dimms, cfg.ranks_per_dimm, cfg.refresh)
                .expect("tensordimm"),
        ),
        Box::new(
            Chameleon::with_refresh(cfg.dimms, cfg.ranks_per_dimm, cfg.refresh).expect("chameleon"),
        ),
        Box::new(RecNmpSystem::new(cfg.clone()).expect("recnmp")),
    ]
}

#[test]
fn all_backends_serve_identical_work() {
    let engine = SpeedupEngine::with_workload(TraceKind::Production, 4, 1, 16, 0xbac);
    let cfg = quiet(RecNmpConfig::optimized(2, 2));
    let trace = engine.trace_for(&cfg);
    let lookups = trace.total_lookups();
    let bytes = lookups * trace.vector_bytes();

    for backend in backends(&cfg).iter_mut() {
        let report = backend.run(&trace);
        assert_eq!(report.insts, lookups, "{} dropped lookups", backend.name());
        assert_eq!(
            report.gathered_bytes,
            bytes,
            "{} gathered the wrong bytes",
            backend.name()
        );
        assert_eq!(report.system, backend.name());
        assert!(report.total_cycles > 0, "{} did no work", backend.name());
    }
}

#[test]
fn every_backend_reports_per_run_deltas() {
    // The unified contract: run the same trace twice on one backend and
    // both reports must describe one run each — no cumulative leakage
    // (the seed's NmpRunReport mixed per-run cycles with lifetime
    // packet/instruction counts).
    let engine = SpeedupEngine::with_workload(TraceKind::Production, 4, 1, 8, 0xdd);
    let cfg = quiet(RecNmpConfig::optimized(1, 2));
    let trace = engine.trace_for(&cfg);
    let lookups = trace.total_lookups();

    for backend in backends(&cfg).iter_mut() {
        let first = backend.run(&trace);
        let second = backend.run(&trace);
        assert_eq!(first.insts, lookups, "{} first run", backend.name());
        assert_eq!(second.insts, lookups, "{} second run", backend.name());
        assert_eq!(
            first.packets,
            second.packets,
            "{} accumulated packets",
            backend.name()
        );
        assert_eq!(
            first.packet_latencies.len(),
            second.packet_latencies.len(),
            "{} accumulated latencies",
            backend.name()
        );
        assert!(
            second.dram.reads <= first.dram.reads,
            "{} leaked DRAM reads across runs ({} then {})",
            backend.name(),
            first.dram.reads,
            second.dram.reads
        );
    }
}

#[test]
fn cluster_matches_single_channel_work_and_scales() {
    // The fig14-style multi-table workload: 8 production tables. A
    // 4-channel cluster must serve exactly the same work as one channel
    // and cut total cycles by at least 3x (near-linear scaling: channels
    // are independent hardware and hash-by-table balances 8 tables over
    // 4 channels two apiece).
    let engine = SpeedupEngine::with_workload(TraceKind::Production, 8, 1, 32, 0x14c);
    let cfg = quiet(RecNmpConfig::with_ranks(4, 2));
    let trace = engine.trace_for(&cfg);
    let lookups = trace.total_lookups();

    let run_cluster = |channels: usize| {
        let mut cluster =
            RecNmpCluster::new(RecNmpClusterConfig::new(channels, cfg.clone())).expect("cluster");
        let report = cluster.run(&trace);
        // The cluster honors the same name/label invariant as the
        // single-channel backends.
        assert_eq!(report.system, cluster.name());
        report
    };

    let one = run_cluster(1);
    let four = run_cluster(4);
    assert_eq!(one.insts, lookups);
    assert_eq!(four.insts, lookups);
    assert_eq!(one.gathered_bytes, four.gathered_bytes);
    // One channel of the cluster == a bare RecNmpSystem on the same trace.
    let mut single = RecNmpSystem::new(cfg.clone()).expect("system");
    let bare = single.run(&trace);
    assert_eq!(one.total_cycles, bare.total_cycles);
    assert_eq!(one.dram_bursts, bare.dram_bursts);

    let scaling = one.total_cycles as f64 / four.total_cycles as f64;
    assert!(
        scaling >= 3.0,
        "1->4 channels scaled only {scaling:.2}x ({} -> {} cycles)",
        one.total_cycles,
        four.total_cycles
    );
}

#[test]
fn sharding_policies_conserve_lookups() {
    let engine = SpeedupEngine::with_workload(TraceKind::Random, 6, 2, 8, 0x5d);
    let cfg = quiet(RecNmpConfig::with_ranks(1, 2));
    let trace = engine.trace_for(&cfg);

    for policy in [ShardingPolicy::HashByTable, ShardingPolicy::RoundRobin] {
        let shards = trace.shard(4, policy);
        assert_eq!(
            shards.iter().map(SlsTrace::total_lookups).sum::<u64>(),
            trace.total_lookups(),
            "{policy:?} lost lookups"
        );
        let mut config = RecNmpClusterConfig::new(4, cfg.clone());
        config.sharding = policy;
        let mut cluster = RecNmpCluster::new(config).expect("cluster");
        let report = cluster.run(&trace);
        assert_eq!(report.insts, trace.total_lookups(), "{policy:?}");
    }
}
