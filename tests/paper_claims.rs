//! Reproduction bands for the paper's headline claims.
//!
//! The absolute numbers cannot match the authors' testbed exactly (our
//! substrate is an independent simulator and the production traces are
//! synthetic substitutes), so each claim is asserted as a band around the
//! published value. `EXPERIMENTS.md` records the exact measurements.

use recnmp::energy::{energy_saving, host_energy, nmp_energy, NmpEnergyParams};
use recnmp::RecNmpConfig;
use recnmp_dram::EnergyParams;
use recnmp_model::{CpuPerfModel, RecModelKind};
use recnmp_sim::speedup::SpeedupEngine;
use recnmp_sim::workload::TraceKind;

fn quiet(mut cfg: RecNmpConfig) -> RecNmpConfig {
    cfg.refresh = false;
    cfg
}

fn engine() -> SpeedupEngine {
    SpeedupEngine::with_workload(TraceKind::Production, 8, 2, 32, 0xc1a)
}

#[test]
fn claim_sls_memory_latency_speedup() {
    // Paper: RecNMP-base 6.1x, RecNMP-opt 9.8x on 8 ranks.
    let e = engine();
    let base = e
        .compare(&quiet(RecNmpConfig::with_ranks(4, 2)))
        .expect("base run");
    let opt = e
        .compare(&quiet(RecNmpConfig::optimized(4, 2)))
        .expect("opt run");
    assert!(
        (4.0..8.0).contains(&base.speedup()),
        "RecNMP-base speedup {:.2} (paper 6.1x)",
        base.speedup()
    );
    assert!(
        (6.5..11.5).contains(&opt.speedup()),
        "RecNMP-opt speedup {:.2} (paper 9.8x)",
        opt.speedup()
    );
    assert!(opt.speedup() > base.speedup());
}

#[test]
fn claim_end_to_end_throughput_improvement() {
    // Paper: up to 4.2x end-to-end (RM2-large, 8 ranks, large batch).
    let e = engine();
    let opt = e
        .compare(&quiet(RecNmpConfig::optimized(4, 2)))
        .expect("opt run");
    let perf = CpuPerfModel::table1();
    let s = perf.end_to_end_speedup(&RecModelKind::Rm2Large.config(), 256, 1, opt.speedup());
    assert!((3.0..5.5).contains(&s), "end-to-end {s:.2} (paper 4.2x)");
    // And the ordering across models holds (Figure 18(a)).
    let small = perf.end_to_end_speedup(&RecModelKind::Rm1Small.config(), 256, 1, opt.speedup());
    assert!(s > small, "RM2-large {s:.2} <= RM1-small {small:.2}");
}

#[test]
fn claim_memory_energy_saving() {
    // Paper: 45.8% memory energy saving.
    let e = engine();
    let cmp = e
        .compare(&quiet(RecNmpConfig::optimized(4, 2)))
        .expect("opt run");
    let dram = EnergyParams::table1();
    let nmp = NmpEnergyParams::table1();
    let host_e = host_energy(&cmp.baseline.dram, &dram);
    let nmp_e = nmp_energy(&cmp.nmp, &dram, &nmp);
    let saving = energy_saving(&host_e, &nmp_e);
    assert!(
        (0.30..0.70).contains(&saving),
        "energy saving {:.1}% (paper 45.8%)",
        100.0 * saving
    );
}

#[test]
fn claim_fc_colocation_relief() {
    // Paper: up to 30% TopFC latency reduction for co-located RM2 models.
    let perf = CpuPerfModel::table1();
    let cfg = RecModelKind::Rm2Large.config();
    let base = perf.breakdown_colocated(&cfg, 64, 8, false).top_fc_us;
    let relieved = perf.breakdown_colocated(&cfg, 64, 8, true).top_fc_us;
    let relief = 1.0 - relieved / base;
    assert!(
        (0.10..0.35).contains(&relief),
        "relief {:.1}%",
        100.0 * relief
    );
    // Small (L2-resident) FCs see only ~4%.
    let small_cfg = RecModelKind::Rm1Small.config();
    let b = perf.breakdown_colocated(&small_cfg, 64, 8, false).top_fc_us;
    let r = perf.breakdown_colocated(&small_cfg, 64, 8, true).top_fc_us;
    assert!(1.0 - r / b < 0.08, "small-FC relief {:.3}", 1.0 - r / b);
}

#[test]
fn claim_area_power_overhead() {
    // Paper Table II: 0.34/0.54 mm2 and 151.3/184.2 mW per PU; a small
    // fraction of Chameleon's CGRA cost.
    use recnmp::physical::{PuPhysical, CHAMELEON_PU};
    let opt = PuPhysical::estimate(&RecNmpConfig::optimized(1, 2));
    assert!((opt.area_mm2 - 0.54).abs() < 1e-9);
    assert!((opt.power_mw - 184.2).abs() < 1e-9);
    assert!(opt.area_mm2 / CHAMELEON_PU.area_mm2 < 0.08);
}

#[test]
fn claim_comparator_margins() {
    // Paper: RecNMP beats TensorDIMM by 2.4-4.8x and Chameleon by
    // 3.3-6.4x when ranks per DIMM scale (Figure 16). Bands widened for
    // the synthetic traces.
    let e = engine();
    let cfg = quiet(RecNmpConfig::optimized(4, 2));
    let nmp = e.run_nmp(&cfg).expect("nmp").cycles_per_lookup();
    let td = e.run_tensordimm(&cfg).expect("td").cycles_per_lookup();
    let ch = e.run_chameleon(&cfg).expect("ch").cycles_per_lookup();
    let vs_td = td / nmp;
    let vs_ch = ch / nmp;
    assert!((1.5..6.0).contains(&vs_td), "vs TensorDIMM {vs_td:.2}");
    assert!((2.0..8.0).contains(&vs_ch), "vs Chameleon {vs_ch:.2}");
    assert!(vs_ch > vs_td);
}

#[test]
fn claim_production_traces_help_recnmp_only() {
    // Paper: RecNMP extracts ~40% more from production traces than random
    // ones; the cache-less comparators are locality-agnostic.
    let prod = SpeedupEngine::with_workload(TraceKind::Production, 8, 2, 32, 0xaa);
    let rand = SpeedupEngine::with_workload(TraceKind::Random, 8, 2, 32, 0xaa);
    let cfg = quiet(RecNmpConfig::optimized(4, 2));
    let nmp_gain = rand.run_nmp(&cfg).expect("nmp rand").cycles_per_lookup()
        / prod.run_nmp(&cfg).expect("nmp prod").cycles_per_lookup();
    let td_gain = rand
        .run_tensordimm(&cfg)
        .expect("td rand")
        .cycles_per_lookup()
        / prod
            .run_tensordimm(&cfg)
            .expect("td prod")
            .cycles_per_lookup();
    assert!(nmp_gain > 1.10, "RecNMP locality gain {nmp_gain:.2}");
    assert!(
        (0.9..1.15).contains(&td_gain),
        "TensorDIMM should be locality-agnostic: {td_gain:.2}"
    );
}
