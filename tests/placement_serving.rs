//! Cross-crate acceptance tests for the placement subsystem: on a
//! Zipf-skewed multi-table workload served by a multi-channel cluster,
//! frequency-balanced placement must strictly beat the legacy hash
//! placement — a higher saturation knee, or a lower p99 at the same
//! offered load. This is the end-to-end claim the `fig19_placement`
//! golden pins.

use recnmp::{RecNmpCluster, RecNmpClusterConfig};
use recnmp_backend::{PlacementPlan, PlacementPolicy, SlsBackend, TableUsage};
use recnmp_sim::serving::{
    placement_sweep, ArrivalProcess, GatherCost, QueryShape, QueryStream, SweepCurve, SweepSpec,
};

/// A fast cluster (refresh off) with `channels` channels of 1 DIMM x 2
/// ranks.
fn cluster(channels: usize) -> Box<dyn SlsBackend> {
    let config = RecNmpClusterConfig::builder()
        .channels(channels)
        .dimms(1)
        .ranks_per_dimm(2)
        .refresh(false)
        .build()
        .unwrap();
    Box::new(RecNmpCluster::new(config).unwrap())
}

/// The skewed workload: 8 tables whose per-table traffic follows
/// `(t+1)^-1.5` — a few tables carry most lookups, as in Figure 7.
fn skewed_shape() -> QueryShape {
    QueryShape::reference_skewed()
}

fn sweep(channels: usize) -> Vec<SweepCurve> {
    let spec = SweepSpec {
        process: ArrivalProcess::Uniform,
        shape: skewed_shape(),
        utilizations: vec![0.5, 0.9, 1.3],
        queries: 24,
        probe_queries: 8,
        seed: 71,
    };
    placement_sweep(
        &mut || cluster(channels),
        &[
            PlacementPolicy::Hash,
            PlacementPolicy::FrequencyBalanced { replicate: 1 },
        ],
        GatherCost::host_default(),
        None,
        &spec,
    )
    .unwrap()
}

#[test]
fn frequency_balanced_beats_hash_on_skewed_traffic() {
    let curves = sweep(4);
    let (hash, freq) = (&curves[0], &curves[1]);
    // Same absolute load axis by construction.
    for (h, f) in hash.points.iter().zip(&freq.points) {
        assert_eq!(h.offered_qps, f.offered_qps);
    }
    let knee = |c: &SweepCurve| c.knee().map_or(0.0, |p| p.offered_qps);
    let top_p99 = |c: &SweepCurve| c.points.last().unwrap().summary.p99;
    // Balancing never costs capacity: the frequency knee is at least the
    // hash knee on the shared load axis.
    assert!(
        knee(freq) >= knee(hash),
        "frequency knee regressed: {} vs {}",
        knee(freq),
        knee(hash)
    );
    // And at the overloaded top point the balanced plan's tail is
    // strictly shorter — the hash bottleneck channel queues without
    // bound first.
    assert!(
        top_p99(freq) < top_p99(hash),
        "overload p99: freq {} vs hash {}",
        top_p99(freq),
        top_p99(hash)
    );
}

#[test]
fn placement_advantage_holds_on_two_channels() {
    // The acceptance criterion names a >=2-channel cluster; check the
    // minimal geometry too.
    let curves = sweep(2);
    let (hash, freq) = (&curves[0], &curves[1]);
    let knee = |c: &SweepCurve| c.knee().map_or(0.0, |p| p.offered_qps);
    let top_p99 = |c: &SweepCurve| c.points.last().unwrap().summary.p99;
    assert!(
        knee(freq) > knee(hash) || top_p99(freq) < top_p99(hash),
        "2-channel: knees {} vs {}, top-load p99 {} vs {}",
        knee(freq),
        knee(hash),
        top_p99(freq),
        top_p99(hash)
    );
}

#[test]
fn plan_imbalance_explains_the_serving_win() {
    // The mechanism, checked directly: on the same query stream the
    // frequency-balanced plan spreads hot traffic strictly more evenly
    // than the hash plan.
    let shape = skewed_shape();
    let queries = QueryStream::new(shape, 71).take_queries(24);
    let usage = TableUsage::from_traces(&queries);
    let hash = PlacementPlan::build(4, None, &usage, PlacementPolicy::Hash).unwrap();
    let freq = PlacementPlan::build(
        4,
        None,
        &usage,
        PlacementPolicy::FrequencyBalanced { replicate: 1 },
    )
    .unwrap();
    assert!(
        freq.load_imbalance() < hash.load_imbalance(),
        "freq imbalance {} vs hash {}",
        freq.load_imbalance(),
        hash.load_imbalance()
    );
    // Every table is placed, and the replicated hot table spans several
    // distinct channels.
    for u in &usage {
        assert!(!freq.replicas(u.table).is_empty());
    }
    let hottest = usage.iter().max_by_key(|u| u.accesses).unwrap().table;
    let reps = freq.replicas(hottest);
    assert!(reps.len() > 1);
    let distinct: std::collections::BTreeSet<_> = reps.iter().collect();
    assert_eq!(distinct.len(), reps.len());
}
