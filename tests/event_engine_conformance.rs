//! Backend-level engine conformance: every `SlsBackend` must produce an
//! **identical** `RunReport` — total cycles, DRAM statistics, gathered
//! bytes, everything — whether its memory channels run the event-driven
//! skip-ahead engine or the per-cycle reference engine. This is the
//! system-level complement of the `event_equivalence` suite inside the
//! dram crate.

use recnmp::{RecNmpCluster, RecNmpClusterConfig, RecNmpConfig, RecNmpSystem};
use recnmp_backend::{RunReport, ShardingPolicy, SlsBackend, SlsTrace};
use recnmp_baselines::{Chameleon, HostBaseline, TensorDimm};
use recnmp_dram::{DramConfig, SimEngine};
use recnmp_trace::{EmbeddingTableSpec, IndexDistribution, SlsBatch, TraceGenerator};
use recnmp_types::{PhysAddr, TableId};

fn workload(tables: u32, batch: usize, pooling: usize) -> SlsTrace {
    let batches: Vec<SlsBatch> = (0..tables)
        .map(|t| {
            TraceGenerator::new(
                TableId::new(t),
                EmbeddingTableSpec::dlrm_default(),
                IndexDistribution::Zipf { s: 0.9 },
                500 + t as u64,
            )
            .batch(batch, pooling)
        })
        .collect();
    SlsTrace::from_batches(&batches, &mut |t, row| {
        PhysAddr::new(((t as u64) << 31) ^ (row * 131 * 128))
    })
}

fn assert_identical(name: &str, per_cycle: &RunReport, event: &RunReport) {
    assert_eq!(
        per_cycle, event,
        "{name}: event-driven report diverged from per-cycle reference"
    );
    assert!(per_cycle.total_cycles > 0, "{name} did no work");
}

/// Both engines, refresh on and off, for one backend constructor.
fn check<B: SlsBackend>(name: &str, mut build: impl FnMut(SimEngine, bool) -> B) {
    for refresh in [true, false] {
        let trace = workload(6, 4, 40);
        let per_cycle = build(SimEngine::PerCycle, refresh).run(&trace);
        let event = build(SimEngine::EventDriven, refresh).run(&trace);
        assert_identical(&format!("{name} (refresh={refresh})"), &per_cycle, &event);
    }
}

#[test]
fn host_baseline_is_engine_invariant() {
    check("host", |engine, refresh| {
        let mut cfg = DramConfig::with_ranks(2, 2);
        cfg.engine = engine;
        cfg.refresh = refresh;
        HostBaseline::with_config(cfg).expect("host")
    });
}

#[test]
fn tensordimm_is_engine_invariant() {
    check("tensordimm", |engine, refresh| {
        let mut td = TensorDimm::with_refresh(2, 2, refresh).expect("tensordimm");
        td.set_engine(engine);
        td
    });
}

#[test]
fn chameleon_is_engine_invariant() {
    check("chameleon", |engine, refresh| {
        let mut ch = Chameleon::with_refresh(2, 2, refresh).expect("chameleon");
        ch.set_engine(engine);
        ch
    });
}

#[test]
fn recnmp_base_is_engine_invariant() {
    check("recnmp", |engine, refresh| {
        let mut cfg = RecNmpConfig::with_ranks(2, 2);
        cfg.engine = engine;
        cfg.refresh = refresh;
        RecNmpSystem::new(cfg).expect("recnmp")
    });
}

#[test]
fn recnmp_opt_is_engine_invariant() {
    // RankCache + table-aware scheduling on top: cache hit/miss decisions
    // must also be engine-independent.
    check("recnmp-opt", |engine, refresh| {
        let mut cfg = RecNmpConfig::optimized(2, 2);
        cfg.engine = engine;
        cfg.refresh = refresh;
        RecNmpSystem::new(cfg).expect("recnmp-opt")
    });
}

#[test]
fn threaded_cluster_is_engine_invariant_and_deterministic() {
    let build = |engine: SimEngine| {
        let mut config = RecNmpClusterConfig::builder()
            .channels(4)
            .dimms(1)
            .ranks_per_dimm(2)
            .sharding(ShardingPolicy::RoundRobin)
            .build()
            .expect("cluster config");
        config.channel.engine = engine;
        RecNmpCluster::new(config).expect("cluster")
    };
    let trace = workload(8, 4, 40);
    let per_cycle = build(SimEngine::PerCycle).run(&trace);
    let event = build(SimEngine::EventDriven).run(&trace);
    assert_identical("cluster", &per_cycle, &event);
    // Thread scheduling must never leak into the merged report: repeat
    // runs on fresh clusters are bit-identical.
    let again = build(SimEngine::EventDriven).run(&trace);
    assert_eq!(event, again, "threaded cluster run is nondeterministic");
}
