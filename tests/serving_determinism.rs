//! Serving-layer conformance: determinism of the open-loop queueing
//! harness and throughput conservation below saturation.
//!
//! These are the cross-crate guarantees the tail-latency experiments
//! (`fig18_tail_latency`, `serve_sweep`) stand on: the same seed and
//! config produce byte-identical latency vectors on every backend and
//! policy, and offered load below the knee is actually served at the
//! offered rate.

use recnmp::{RecNmpCluster, RecNmpClusterConfig};
use recnmp_backend::SlsBackend;
use recnmp_baselines::{HostBaseline, TensorDimm};
use recnmp_sim::serving::{
    saturation_qps, serve, ArrivalProcess, Coalescing, DispatchPolicy, QueryShape, ServingConfig,
    ServingMode,
};

fn cluster4() -> RecNmpCluster {
    let config = RecNmpClusterConfig::builder()
        .channels(4)
        .dimms(1)
        .ranks_per_dimm(2)
        .build()
        .unwrap();
    RecNmpCluster::new(config).unwrap()
}

fn backends() -> Vec<Box<dyn SlsBackend>> {
    vec![
        Box::new(HostBaseline::new(1, 2).unwrap()),
        Box::new(TensorDimm::new(1, 2).unwrap()),
        Box::new(cluster4()),
    ]
}

fn cfg(policy: DispatchPolicy) -> ServingConfig {
    ServingConfig {
        process: ArrivalProcess::Poisson,
        qps: 500_000.0,
        queries: 24,
        shape: QueryShape::new(2, 2, 8),
        mode: ServingMode::Queued(policy),
        coalescing: None,
        max_queue_depth: None,
        seed: 0xdead_beef,
    }
}

#[test]
fn same_seed_is_byte_identical_across_runs_and_policies_rerun() {
    for policy in DispatchPolicy::ALL {
        let c = cfg(policy);
        for (a, b) in backends().iter_mut().zip(backends().iter_mut()) {
            let ra = serve(a.as_mut(), &c).unwrap();
            let rb = serve(b.as_mut(), &c).unwrap();
            // Full per-query vectors, not just summaries: arrival
            // schedule, completion timestamps and latencies all match
            // bit-for-bit, so the percentiles do too.
            assert_eq!(ra.arrivals, rb.arrivals, "{policy} arrivals");
            assert_eq!(ra.completions, rb.completions, "{policy} completions");
            assert_eq!(ra.latencies, rb.latencies, "{policy} latencies");
            assert_eq!(ra.summary(), rb.summary(), "{policy} summary");
            assert_eq!(
                ra.report.query_completions, rb.report.query_completions,
                "{policy} report timestamps"
            );
        }
    }
}

#[test]
fn serving_conserves_lookups_on_every_backend() {
    let c = cfg(DispatchPolicy::FifoSingleQueue);
    for backend in backends().iter_mut() {
        let r = serve(backend.as_mut(), &c).unwrap();
        assert_eq!(
            r.report.insts,
            c.shape.lookups_per_query() * c.queries as u64,
            "{} lost lookups",
            r.system
        );
        assert_eq!(r.latencies.len(), c.queries);
        // Completion never precedes arrival.
        assert!(r
            .completions
            .iter()
            .zip(&r.arrivals)
            .all(|(done, arr)| done >= arr));
    }
}

#[test]
fn below_saturation_throughput_tracks_offered_rate() {
    // Uniform (perfectly paced) arrivals at half the probed saturation
    // rate: completions must keep up with arrivals on every backend.
    let shape = QueryShape::new(2, 2, 8);
    type NamedFactories<'a> = Vec<(&'a str, Box<recnmp_sim::serving::BackendFactory<'a>>)>;
    let factories: NamedFactories<'_> = vec![
        (
            "host",
            Box::new(|| Box::new(HostBaseline::new(1, 2).unwrap())),
        ),
        ("cluster", Box::new(|| Box::new(cluster4()))),
    ];
    for (label, mut factory) in factories {
        let fifo = ServingMode::Queued(DispatchPolicy::FifoSingleQueue);
        let sat = saturation_qps(factory.as_mut(), fifo, shape, 8, 3).unwrap();
        let c = ServingConfig {
            process: ArrivalProcess::Uniform,
            qps: 0.5 * sat,
            queries: 32,
            shape,
            mode: fifo,
            coalescing: None,
            max_queue_depth: None,
            seed: 3,
        };
        let r = serve(factory().as_mut(), &c).unwrap();
        let achieved = r.achieved_qps();
        assert!(
            achieved >= 0.85 * c.qps,
            "{label}: offered {:.0} qps but achieved only {achieved:.0}",
            c.qps
        );
    }
}

/// Sharded scatter/gather configuration over a skewed multi-table query
/// stream on the 4-channel cluster.
fn sharded_cfg(placement: recnmp_backend::PlacementPolicy) -> ServingConfig {
    ServingConfig {
        process: ArrivalProcess::Poisson,
        qps: 500_000.0,
        queries: 24,
        shape: QueryShape::reference_skewed(),
        mode: ServingMode::sharded(placement),
        coalescing: None,
        max_queue_depth: None,
        seed: 0xdead_beef,
    }
}

#[test]
fn sharded_serving_is_byte_identical_and_lookup_conserving() {
    for placement in recnmp_backend::PlacementPolicy::COMPARED {
        let c = sharded_cfg(placement);
        let mut a = cluster4();
        let mut b = cluster4();
        let ra = serve(&mut a, &c).unwrap();
        let rb = serve(&mut b, &c).unwrap();
        // Byte-identical reruns for a fixed seed: the arrival schedule,
        // every per-query completion timestamp, and every latency.
        assert_eq!(ra.arrivals, rb.arrivals, "{placement} arrivals");
        assert_eq!(ra.completions, rb.completions, "{placement} completions");
        assert_eq!(ra.latencies, rb.latencies, "{placement} latencies");
        assert_eq!(ra.report, rb.report, "{placement} merged report");
        // Lookup conservation: the sum over all shards equals the query
        // stream's total — scatter loses and duplicates nothing.
        assert_eq!(
            ra.report.insts,
            c.shape.lookups_per_query() * c.queries as u64,
            "{placement} lost lookups"
        );
        // Completion never precedes arrival, and every query pays at
        // least the gather base cost after its slowest shard.
        assert!(ra
            .completions
            .iter()
            .zip(&ra.arrivals)
            .all(|(done, arr)| done > arr));
    }
}

/// The tiered geometry used by the serving conformance tests: 16 tables
/// of 128 MB over 4 DRAM channels + 2 SSD units, with the DRAM tier
/// sized to `1/ratio` of the 2.048 GB footprint.
fn tiers_at(ratio: u64) -> recnmp_backend::TierSpec {
    let footprint = 16 * 128_000_000u64;
    recnmp_backend::TierSpec {
        dram_channels: 4,
        dram_channel_capacity: recnmp_types::ByteSize::bytes(footprint / (ratio * 4)),
        ssd_units: 2,
        ssd_unit_capacity: recnmp_types::ByteSize::gib(4),
    }
}

/// The capacity workload: 4-of-16 table sampling under strided Zipf-1.5
/// weights, the same shape `fig_capacity` sweeps.
fn tiered_shape() -> QueryShape {
    QueryShape::new(16, 2, 4)
        .with_table_skew(1.5)
        .with_skew_rotation(5)
        .with_table_sampling(4)
}

fn tiered_cfg(mode: ServingMode) -> ServingConfig {
    ServingConfig {
        process: ArrivalProcess::Poisson,
        qps: 5_000.0,
        queries: 24,
        shape: tiered_shape(),
        mode,
        coalescing: None,
        max_queue_depth: None,
        seed: 0xdead_beef,
    }
}

#[test]
fn tiered_serving_is_byte_identical_and_lookup_conserving() {
    use recnmp_backend::{MigrationCost, PromotionPolicy, TieredPolicy};
    use recnmp_sim::serving::{reference_tiered, EpochPromotion, TieredDispatch};

    let tiers = tiers_at(4);
    let mut promote = TieredDispatch::new(TieredPolicy::Hash, tiers);
    promote.promotion = Some(EpochPromotion {
        epoch_queries: 8,
        policy: PromotionPolicy {
            hysteresis_pct: 20,
            migration: MigrationCost::new(10_000, 1),
        },
    });
    let modes = [
        ServingMode::tiered(TieredPolicy::Hash, tiers),
        ServingMode::tiered(TieredPolicy::FrequencyTiered { replicate_hot: 0 }, tiers),
        ServingMode::Tiered(promote),
    ];
    for mode in modes {
        let c = tiered_cfg(mode);
        let mut a = reference_tiered(tiers);
        let mut b = reference_tiered(tiers);
        let ra = serve(a.as_mut(), &c).unwrap();
        let rb = serve(b.as_mut(), &c).unwrap();
        // Byte-identical reruns for a fixed seed, epoch rebalances and
        // migration stalls included.
        assert_eq!(ra.arrivals, rb.arrivals, "{} arrivals", mode.name());
        assert_eq!(
            ra.completions,
            rb.completions,
            "{} completions",
            mode.name()
        );
        assert_eq!(ra.latencies, rb.latencies, "{} latencies", mode.name());
        assert_eq!(ra.report, rb.report, "{} merged report", mode.name());
        // Lookup conservation across tiers: the DRAM and SSD shards
        // together serve exactly the stream's lookups — spilling a table
        // loses and duplicates nothing.
        assert_eq!(
            ra.report.insts,
            c.shape.lookups_per_query() * c.queries as u64,
            "{} lost lookups",
            mode.name()
        );
        assert!(ra
            .completions
            .iter()
            .zip(&ra.arrivals)
            .all(|(done, arr)| done > arr));
    }
}

#[test]
fn frequency_tiered_sustains_more_than_hash_when_spilled() {
    use recnmp_backend::TieredPolicy;
    use recnmp_sim::serving::reference_tiered;

    // At 2x DRAM footprint half the model must live on SSD. The
    // frequency split keeps the hot head in DRAM, so it sustains a
    // strictly higher probed saturation rate than the frequency-blind
    // hash split on the same hardware and workload.
    let tiers = tiers_at(2);
    let shape = tiered_shape();
    let mut factory = || reference_tiered(tiers);
    let sat = |factory: &mut dyn FnMut() -> Box<dyn SlsBackend>, policy| {
        saturation_qps(
            factory,
            ServingMode::tiered(policy, tiers),
            shape,
            8,
            0xdead_beef,
        )
        .unwrap()
    };
    let hash = sat(&mut factory, TieredPolicy::Hash);
    let freq = sat(
        &mut factory,
        TieredPolicy::FrequencyTiered { replicate_hot: 0 },
    );
    assert!(
        freq > hash,
        "frequency-tiered must sustain more than hash past 1x: {freq} vs {hash}"
    );
}

#[test]
fn coalescing_trades_wait_for_fewer_jobs() {
    let base = cfg(DispatchPolicy::FifoSingleQueue);
    let mut host = HostBaseline::new(1, 2).unwrap();
    let plain = serve(&mut host, &base).unwrap();
    let mut coalesced_cfg = base;
    coalesced_cfg.coalescing = Some(Coalescing::new(4, 50_000));
    let mut host2 = HostBaseline::new(1, 2).unwrap();
    let coalesced = serve(&mut host2, &coalesced_cfg).unwrap();
    assert_eq!(plain.jobs, base.queries);
    assert!(coalesced.jobs < plain.jobs, "groups formed");
    // Same offered queries either way; every query still completes.
    assert_eq!(coalesced.latencies.len(), base.queries);
    assert_eq!(coalesced.report.insts, plain.report.insts);
}

#[test]
fn pinned_latency_percentiles_for_fixed_seed() {
    // Pins the serving output for one (seed, config) point so an
    // accidental change to the arrival generator, query stream, or
    // scheduler arithmetic fails loudly. Uniform arrivals keep libm out
    // of the schedule. If a deliberate serving change moves these
    // numbers, update them alongside the goldens.
    let c = ServingConfig {
        process: ArrivalProcess::Uniform,
        qps: 1_000_000.0,
        queries: 16,
        shape: QueryShape::new(2, 2, 8),
        mode: ServingMode::Queued(DispatchPolicy::FifoSingleQueue),
        coalescing: None,
        max_queue_depth: None,
        seed: 42,
    };
    let mut host = HostBaseline::new(1, 2).unwrap();
    let r = serve(&mut host, &c).unwrap();
    let s = r.summary();
    let pinned = (s.p50, s.p95, s.p99, s.max);
    let expect = (357u64, 455u64, 455u64, 455u64);
    assert_eq!(pinned, expect, "pinned serving percentiles drifted");
}
