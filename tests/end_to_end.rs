//! Integration: the full pipeline from trace generation through packets,
//! the RecNMP system and the baselines, spanning every crate.

use recnmp::{RecNmpConfig, RecNmpSystem};
use recnmp_sim::speedup::SpeedupEngine;
use recnmp_sim::workload::{SlsWorkload, TraceKind};
use recnmp_trace::{EmbeddingTableSpec, IndexDistribution, TraceGenerator};
use recnmp_types::TableId;

fn quiet(mut cfg: RecNmpConfig) -> RecNmpConfig {
    cfg.refresh = false;
    cfg
}

#[test]
fn full_pipeline_conservation() {
    // Every lookup generated must appear exactly once as an instruction,
    // and every system must serve the same number of vectors.
    let engine = SpeedupEngine::with_workload(TraceKind::Production, 4, 1, 16, 99);
    let lookups = engine.workload().total_lookups() as u64;
    let cfg = quiet(RecNmpConfig::optimized(2, 2));

    let host = engine.run_host(&cfg).expect("host run");
    assert_eq!(host.insts, lookups);

    let nmp = engine.run_nmp(&cfg).expect("nmp run");
    assert_eq!(nmp.insts, lookups);
    assert_eq!(nmp.rank_insts.iter().sum::<u64>(), lookups);
    // Cache hits + DRAM fetches cover every 64-byte line: the RankCache is
    // probed once per burst of each vector, and every missing or bypassed
    // line is fetched from DRAM exactly once.
    let vsize = 2; // 128-byte DLRM vectors
    assert_eq!(nmp.dram_bursts, nmp.cache.misses + nmp.cache.bypasses);
    assert_eq!(nmp.cache.lookups() + nmp.cache.bypasses, lookups * vsize);

    let td = engine.run_tensordimm(&cfg).expect("tensordimm run");
    assert_eq!(td.insts, lookups);
    let ch = engine.run_chameleon(&cfg).expect("chameleon run");
    assert_eq!(ch.insts, lookups);
}

#[test]
fn speedup_hierarchy_matches_paper_ordering() {
    // RecNMP-opt > TensorDIMM > Chameleon > host, on production traces
    // with a 4 DIMM x 2 rank channel (Figure 16's ordering).
    let engine = SpeedupEngine::with_workload(TraceKind::Production, 8, 2, 32, 7);
    let cfg = quiet(RecNmpConfig::optimized(4, 2));
    let host = engine.run_host(&cfg).expect("host").cycles_per_lookup();
    let nmp = engine.run_nmp(&cfg).expect("nmp").cycles_per_lookup();
    let td = engine
        .run_tensordimm(&cfg)
        .expect("tensordimm")
        .cycles_per_lookup();
    let ch = engine
        .run_chameleon(&cfg)
        .expect("chameleon")
        .cycles_per_lookup();
    assert!(nmp < td, "RecNMP {nmp:.2} vs TensorDIMM {td:.2}");
    assert!(td < ch, "TensorDIMM {td:.2} vs Chameleon {ch:.2}");
    assert!(ch < host, "Chameleon {ch:.2} vs host {host:.2}");
}

#[test]
fn rank_scaling_is_monotonic() {
    let engine = SpeedupEngine::with_workload(TraceKind::Production, 8, 1, 16, 21);
    let mut prev = f64::INFINITY;
    for (dimms, ranks) in [(1u8, 2u8), (2, 2), (4, 2)] {
        let cpl = engine
            .run_nmp(&quiet(RecNmpConfig::with_ranks(dimms, ranks)))
            .expect("nmp")
            .cycles_per_lookup();
        assert!(
            cpl < prev,
            "{dimms}x{ranks} did not improve: {cpl:.3} vs {prev:.3}"
        );
        prev = cpl;
    }
}

#[test]
fn offload_convenience_path_matches_manual_path_shape() {
    // RecNmpSystem::offload wires builder + optimizer + mapper internally;
    // it must execute every lookup of every batch.
    let spec = EmbeddingTableSpec::dlrm_default();
    let batches: Vec<_> = (0..3u32)
        .map(|t| {
            TraceGenerator::new(
                TableId::new(t),
                spec,
                IndexDistribution::Zipf { s: 0.9 },
                5 + t as u64,
            )
            .batch(8, 40)
        })
        .collect();
    let mut sys = RecNmpSystem::new(quiet(RecNmpConfig::optimized(1, 2))).expect("system");
    let report = sys.offload(&batches).expect("offload");
    assert_eq!(report.insts, 3 * 8 * 40);
    assert_eq!(report.packets, 3); // 8 poolings per packet
    assert!(report.total_cycles > 0);
}

#[test]
fn workload_is_deterministic_across_engines() {
    let a = SlsWorkload::build(TraceKind::Production, 4, 1, 8, 80, 1234);
    let b = SlsWorkload::build(TraceKind::Production, 4, 1, 8, 80, 1234);
    assert_eq!(a.batches.len(), b.batches.len());
    for (x, y) in a.batches.iter().zip(&b.batches) {
        assert_eq!(x.flat_indices(), y.flat_indices());
    }
    let cfg = quiet(RecNmpConfig::with_ranks(1, 2));
    let ra = SpeedupEngine::new(a, 1).run_nmp(&cfg).expect("run a");
    let rb = SpeedupEngine::new(b, 1).run_nmp(&cfg).expect("run b");
    assert_eq!(ra.total_cycles, rb.total_cycles);
    assert_eq!(ra.dram_bursts, rb.dram_bursts);
}
