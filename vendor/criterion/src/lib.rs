//! Offline minimal stand-in for the `criterion` crate.
//!
//! The workspace builds hermetically (no crates.io). The bench targets use
//! a small slice of criterion — `Criterion::benchmark_group`, group tuning
//! knobs, `bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — which this crate provides
//! with a simple wall-clock measurement loop instead of criterion's
//! statistical machinery. Each benchmark runs a short warm-up, then times
//! `sample_size` batches and prints the mean per-iteration time, so
//! `cargo bench` produces comparable (if less rigorous) numbers offline.

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

/// A group of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget for the measurement phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
            warm_up: self.warm_up_time,
            budget: self.measurement_time,
            samples: self.sample_size,
        };
        f(&mut b);
        let mean_ns = if b.iterations == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iterations as f64
        };
        println!(
            "{}/{}: {} iterations, mean {:.1} us/iter",
            self.name,
            id,
            b.iterations,
            mean_ns / 1000.0
        );
        self
    }

    /// Ends the group (printing is per-benchmark; nothing left to flush).
    pub fn finish(&mut self) {}
}

/// Times a closure over repeated iterations.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
    warm_up: Duration,
    budget: Duration,
    samples: usize,
}

impl Bencher {
    /// Calls `f` repeatedly: first until the warm-up budget elapses, then
    /// timed until either the measurement budget or the sample count is
    /// exhausted, whichever comes first.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
            self.iterations += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
        self.elapsed += start.elapsed();
    }
}

/// Declares a benchmark group: a runner that calls each registered
/// function with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` that runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        group.warm_up_time(Duration::ZERO);
        group.measurement_time(Duration::from_secs(1));
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert!(runs >= 3);
    }
}
