//! Offline stand-in for `serde`.
//!
//! The workspace builds hermetically (no crates.io); the simulator never
//! serializes anything at runtime, so this crate only has to make
//! `use serde::{Deserialize, Serialize};` plus the derive attributes
//! compile. The traits are empty markers and the derives are no-ops.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
