//! Offline minimal stand-in for the `rand` crate.
//!
//! The workspace builds hermetically (no crates.io). Every stochastic
//! component draws randomness through `recnmp_types::rng::DetRng`, which
//! implements [`RngCore`]; the only `rand` surface the workspace uses is
//! `RngCore` (implemented by `DetRng`) and `Rng::gen_range` over float
//! and integer ranges. This crate provides exactly that surface with the
//! same semantics as upstream `rand` for those calls.

use std::fmt;
use std::ops::Range;

/// Error type for fallible RNG operations (never produced here).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core RNG interface, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`fill_bytes`](Self::fill_bytes).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Ranges that can produce one uniformly distributed sample.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Unbiased via Lemire's multiply-shift rejection.
                let bound = span as u128;
                loop {
                    let x = rng.next_u64();
                    let m = (x as u128).wrapping_mul(bound);
                    let low = m as u64;
                    if low >= span || low >= (u64::MAX - span + 1) % span {
                        return self.start + ((m >> 64) as u64) as $t;
                    }
                }
            }
        }
    )*};
}

int_range!(u64, u32, usize);

/// Convenience methods atop [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns a uniformly distributed value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = SplitMix(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn int_range_stays_in_bounds_and_covers() {
        let mut rng = SplitMix(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let x: u64 = rng.gen_range(3u64..10);
            assert!((3..10).contains(&x));
            seen[(x - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
