//! Offline minimal stand-in for the `proptest` crate.
//!
//! The workspace builds hermetically (no crates.io). The property tests in
//! this workspace use a small slice of proptest: range/`Just`/tuple/
//! `prop_oneof!` strategies, `prop::collection::vec`, `any::<bool>()`,
//! `Strategy::prop_map`, the `proptest!` macro with an optional
//! `ProptestConfig::with_cases` attribute, and the `prop_assert*` macros.
//! This crate provides exactly that surface.
//!
//! Unlike upstream proptest there is no shrinking and no persisted failure
//! seeds: each test runs `cases` deterministic pseudo-random inputs (seeded
//! from the case index), so failures reproduce across runs and machines.

/// The deterministic RNG driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG for one test case.
    pub fn new(seed: u64) -> Self {
        Self(
            seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0x1234_5678),
        )
    }

    /// Next 64 pseudo-random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        self.next_u64() % n
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A uniform choice between boxed strategies (built by `prop_oneof!`).
    pub struct Union<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

    /// Boxes a strategy (used by `prop_oneof!` to unify arm types).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<i32> {
        type Value = i32;

        fn generate(&self, rng: &mut TestRng) -> i32 {
            assert!(self.start < self.end, "empty range");
            let span = (self.end as i64 - self.start as i64) as u64;
            (self.start as i64 + rng.below(span) as i64) as i32
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range");
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (0 A, 1 B);
        (0 A, 1 B, 2 C);
        (0 A, 1 B, 2 C, 3 D);
        (0 A, 1 B, 2 C, 3 D, 4 E);
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize);

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a size drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Run-count configuration for one `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body runs
/// once per case with freshly generated arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(#[test] fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    // Hash the test name into the seed so sibling tests
                    // see different streams.
                    let mut seed = case.wrapping_add(0xa5a5);
                    for b in stringify!($name).bytes() {
                        seed = seed.wrapping_mul(31).wrapping_add(b as u64);
                    }
                    let mut rng = $crate::TestRng::new(seed);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniformly picks one of several strategies per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![$($crate::strategy::boxed($strat),)+])
    };
}

/// Asserts a property (plain `assert!` without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality of two expressions.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality of two expressions.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! Namespaced strategy modules (`prop::collection::vec`).

        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3u64..17,
            v in prop::collection::vec(0u64..5, 1..8),
            choice in prop_oneof![Just(1usize), Just(2)],
            flag in any::<bool>(),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert!(choice == 1 || choice == 2);
            let _ = flag;
        }

        #[test]
        fn prop_map_applies(
            y in (0u32..10).prop_map(|v| v * 2),
        ) {
            prop_assert_eq!(y % 2, 0);
            prop_assert!(y < 20);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::new(7);
        let mut b = crate::TestRng::new(7);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
