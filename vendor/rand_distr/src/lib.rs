//! Offline minimal stand-in for the `rand_distr` crate.
//!
//! Provides the [`Distribution`] trait and an exact [`Zipf`] sampler —
//! the only `rand_distr` surface the workspace uses. The sampler is the
//! rejection-inversion method of Hörmann & Derflinger ("Rejection-
//! inversion to generate variates from monotone discrete distributions",
//! 1996), the same algorithm upstream `rand_distr` uses, so samples are
//! drawn from the exact Zipf distribution (not an approximation) in O(1)
//! expected time per sample.

use rand::RngCore;

/// Types that can sample values of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`Zipf`] distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZipfError {
    /// The number of elements must be at least 1.
    NTooSmall,
    /// The exponent must be positive and finite.
    STooSmall,
}

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZipfError::NTooSmall => f.write_str("Zipf requires n >= 1"),
            ZipfError::STooSmall => f.write_str("Zipf requires s > 0"),
        }
    }
}

impl std::error::Error for ZipfError {}

/// The Zipf (zeta-truncated) distribution over `{1, ..., n}` with
/// exponent `s`: `P(k) ∝ k^-s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: f64,
    s: f64,
    /// `H(1.5) - 1`, the lower bound of the inversion domain.
    h_x1: f64,
    /// `H(n + 0.5)`, the upper bound of the inversion domain.
    h_n: f64,
    /// Acceptance shortcut constant.
    shortcut: f64,
}

fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    if (1.0 - s).abs() < 1e-12 {
        log_x
    } else {
        (((1.0 - s) * log_x).exp() - 1.0) / (1.0 - s)
    }
}

fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

fn h_integral_inverse(x: f64, s: f64) -> f64 {
    if (1.0 - s).abs() < 1e-12 {
        x.exp()
    } else {
        // Guard against tiny negative arguments from rounding.
        let t = (x * (1.0 - s) + 1.0).max(0.0);
        (t.ln() / (1.0 - s)).exp()
    }
}

impl Zipf {
    /// Creates a Zipf distribution over `{1, ..., n}` with exponent `s`.
    ///
    /// # Errors
    ///
    /// Returns a [`ZipfError`] when `n` is zero or `s` is not a positive
    /// finite number.
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n < 1 {
            return Err(ZipfError::NTooSmall);
        }
        if s <= 0.0 || s.is_nan() || !s.is_finite() {
            return Err(ZipfError::STooSmall);
        }
        let nf = n as f64;
        Ok(Self {
            n: nf,
            s,
            h_x1: h_integral(1.5, s) - 1.0,
            h_n: h_integral(nf + 0.5, s),
            shortcut: 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s),
        })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            // u is uniform in (h_x1, h_n].
            let u = self.h_n + unit * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.s);
            let k = x.clamp(1.0, self.n).round();
            if k - x <= self.shortcut || u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(1000, 0.9).unwrap();
        let mut rng = SplitMix(3);
        for _ in 0..50_000 {
            let x = z.sample(&mut rng);
            assert!((1.0..=1000.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn rank_one_frequency_matches_theory() {
        // For Zipf(n=1000, s=1), P(1) = 1/H_1000 ≈ 0.1336.
        let z = Zipf::new(1000, 1.0).unwrap();
        let mut rng = SplitMix(4);
        let n = 100_000;
        let ones = (0..n).filter(|_| z.sample(&mut rng) == 1.0).count();
        let p = ones as f64 / n as f64;
        assert!((p - 0.1336).abs() < 0.01, "P(1) = {p}");
    }

    #[test]
    fn skew_orders_rank_frequencies() {
        let z = Zipf::new(100, 1.2).unwrap();
        let mut rng = SplitMix(5);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize - 1] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[4] > counts[40]);
    }
}
