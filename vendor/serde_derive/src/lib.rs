//! Offline stand-in for `serde_derive`.
//!
//! This workspace builds in a hermetic environment with no crates.io
//! access. Nothing in the workspace actually serializes data — the
//! `#[derive(Serialize, Deserialize)]` attributes only document intent —
//! so the derives expand to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
